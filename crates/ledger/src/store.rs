//! Pluggable durable ledger storage.
//!
//! Hyperledger Fabric peers persist blocks in an append-only block file
//! and rebuild the state and history indexes by replay (Androulaki et
//! al. §4.4). This module provides the equivalent seam for the
//! simulated peers: a [`LedgerStore`] trait with two backends —
//! [`MemoryStore`] (the status quo, now behind the trait) and
//! [`AofStore`], a real append-only file with length-prefixed records,
//! a content-hash footer per record, and truncate-on-torn-tail
//! recovery.
//!
//! A store holds two record kinds:
//!
//! - **block** records — every committed block, appended in commit
//!   order, encoded with [`codec::encode_block`];
//! - **snapshot** records — periodic [`LedgerSnapshot`]s bundling the
//!   encoded world state, history database, committed transaction ids
//!   and per-key CRDT merge frontiers at a block height.
//!
//! [`LedgerStore::compact_up_to`] drops block records covered by the
//! latest snapshot (never beyond it), bounding store growth; recovery
//! ([`LedgerStore::load`]) hands back the latest snapshot plus the
//! retained block records so a peer can replay the suffix.
//!
//! # Durability model
//!
//! [`AofStore`] flushes after every append but, by default, does not
//! `fsync`: the simulated crash model is process loss, not power loss,
//! and the torn-tail scan handles a partially written final record
//! either way. [`AofStore::open_with_fsync`] upgrades the crash model
//! to power loss: every appended record (and every compaction rewrite)
//! is `fsync`ed before the call returns, at the cost of one
//! `sync_data` per record. On open, records are scanned sequentially
//! and the file is truncated at the first record that is short, fails
//! its footer check, or does not decode — exactly Fabric's block-file
//! recovery behaviour. Truncation is reserved for the *tail*, though:
//! a bad record with a structurally valid record after it cannot be a
//! crashed append, so open reports it as
//! [`StoreError::CorruptRecord`] instead of silently dropping the
//! intact suffix.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use fabriccrdt_crypto::{digest, Digest};

use crate::block::Block;
use crate::codec::{self, DecodeError, Reader, Writer};

/// Snapshot record layout version; bump on layout changes.
const SNAPSHOT_FORMAT_VERSION: u8 = 1;

/// Record kind tag for a block record.
const KIND_BLOCK: u8 = 1;
/// Record kind tag for a snapshot record.
const KIND_SNAPSHOT: u8 = 2;
/// Bytes of the content-hash footer appended to every record.
const FOOTER_LEN: usize = 8;
/// Record header: kind byte + u64 payload length.
const HEADER_LEN: usize = 9;

/// Error from a ledger store operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An I/O operation failed (append-only-file backend only).
    Io {
        /// The operation that failed (e.g. `"open"`, `"append"`).
        op: &'static str,
        /// The underlying I/O error, rendered.
        message: String,
    },
    /// A stored payload failed to decode. Only reachable through
    /// [`LedgerStore::load`] on a store whose *validated* records are
    /// inconsistent (e.g. a block record that decodes but references a
    /// different layout version) — torn tails are truncated at open,
    /// not reported.
    Corrupt(DecodeError),
    /// A record *mid-file* failed its content-hash footer or payload
    /// decode while a structurally valid record follows it. That is
    /// in-place corruption (bit rot, a hostile edit), not the torn
    /// tail of a crashed append — truncating here would silently
    /// discard the intact suffix, so open refuses instead.
    CorruptRecord {
        /// Byte offset of the corrupt record in the file.
        offset: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, message } => write!(f, "store {op} failed: {message}"),
            StoreError::Corrupt(e) => write!(f, "store record corrupt: {e}"),
            StoreError::CorruptRecord { offset } => write!(
                f,
                "store record at byte {offset} is corrupt but valid records \
                 follow: in-place corruption, not a torn tail"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<DecodeError> for StoreError {
    fn from(e: DecodeError) -> Self {
        StoreError::Corrupt(e)
    }
}

fn io_err(op: &'static str, e: std::io::Error) -> StoreError {
    StoreError::Io {
        op,
        message: e.to_string(),
    }
}

/// A point-in-time snapshot of a peer's derived ledger state at block
/// `last_block`: everything a restarted or catching-up peer needs short
/// of the block suffix committed after the snapshot.
///
/// The component byte strings are produced by `ledger::codec`
/// (`encode_state`, `encode_history`, `encode_txids`) except
/// `frontiers`, which is opaque to this crate — the fabric layer
/// encodes its per-key CRDT version-vector merge frontiers there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerSnapshot {
    /// Number of the last block the snapshot covers.
    pub last_block: u64,
    /// Hash of that block — the anchor the retained suffix chains to.
    pub tip_hash: Digest,
    /// Encoded world state ([`codec::encode_state`]).
    pub state: Vec<u8>,
    /// Encoded history database ([`codec::encode_history`]).
    pub history: Vec<u8>,
    /// Encoded committed transaction ids ([`codec::encode_txids`]).
    pub committed_ids: Vec<u8>,
    /// Encoded per-key CRDT merge frontiers (fabric-layer format).
    pub frontiers: Vec<u8>,
}

impl LedgerSnapshot {
    /// Serializes the snapshot as one self-contained byte string.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u8(SNAPSHOT_FORMAT_VERSION);
        w.u64(self.last_block);
        w.digest(&self.tip_hash);
        w.bytes(&self.state);
        w.bytes(&self.history);
        w.bytes(&self.committed_ids);
        w.bytes(&self.frontiers);
        w.buf
    }

    /// Parses a snapshot serialized by [`LedgerSnapshot::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] for truncated, malformed or
    /// wrong-version input. The component byte strings are *not*
    /// decoded here; their consumers validate them.
    pub fn from_bytes(data: &[u8]) -> Result<LedgerSnapshot, DecodeError> {
        let mut r = Reader::new(data);
        let version = r.u8()?;
        if version != SNAPSHOT_FORMAT_VERSION {
            return Err(DecodeError::new("unsupported format version", 0));
        }
        let snapshot = LedgerSnapshot {
            last_block: r.u64()?,
            tip_hash: r.digest()?,
            state: r.bytes()?,
            history: r.bytes()?,
            committed_ids: r.bytes()?,
            frontiers: r.bytes()?,
        };
        r.finish()?;
        Ok(snapshot)
    }

    /// Size of the serialized snapshot in bytes — the cost of shipping
    /// it over the (simulated) wire.
    pub fn encoded_len(&self) -> usize {
        // version + last_block + tip_hash + four length-prefixed strings.
        1 + 8
            + 32
            + 4 * 8
            + self.state.len()
            + self.history.len()
            + self.committed_ids.len()
            + self.frontiers.len()
    }
}

/// Everything a store holds, as loaded by [`LedgerStore::load`]: the
/// latest snapshot (if any) and the retained block records in append
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredLedger {
    /// The most recent snapshot put into the store, if any.
    pub snapshot: Option<LedgerSnapshot>,
    /// Retained blocks, in the order they were appended.
    pub blocks: Vec<Block>,
}

/// Durable ledger storage: append-only block records plus periodic
/// snapshots, with compaction bounded by the latest snapshot.
pub trait LedgerStore: Send {
    /// Appends a committed block record.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] when the backend cannot persist the
    /// record.
    fn append_block(&mut self, block: &Block) -> Result<(), StoreError>;

    /// Stores a snapshot record. The latest snapshot (highest
    /// `last_block`; insertion order breaks ties) supersedes earlier
    /// ones for [`LedgerStore::load`] and compaction.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] when the backend cannot persist the
    /// record.
    fn put_snapshot(&mut self, snapshot: &LedgerSnapshot) -> Result<(), StoreError>;

    /// Drops block records numbered at or below `block_num`, clamped to
    /// the latest snapshot's `last_block` so recovery always has a
    /// snapshot covering everything it cannot replay. A store without a
    /// snapshot compacts nothing. Superseded snapshot records are
    /// dropped too. Returns the number of block records dropped.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] when the backend cannot rewrite itself.
    fn compact_up_to(&mut self, block_num: u64) -> Result<u64, StoreError>;

    /// Loads the latest snapshot and all retained blocks.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] when records cannot be read back.
    fn load(&self) -> Result<StoredLedger, StoreError>;

    /// Whether the store retains a block record numbered `number`.
    /// Backends answer this from their in-memory record index, so
    /// callers (e.g. gossip anti-entropy candidate selection) can probe
    /// cheaply without decoding the whole store.
    fn has_block(&self, number: u64) -> bool {
        self.load()
            .map(|stored| stored.blocks.iter().any(|b| b.header.number == number))
            .unwrap_or(false)
    }
}

// ------------------------------------------------------------- memory

/// The in-memory backend: record bytes held in vectors. This is the
/// pre-existing "everything lives in memory" behaviour behind the
/// [`LedgerStore`] seam — records are still *encoded*, so both backends
/// exercise the same codec path and [`LedgerStore::load`] is equally
/// lossy-or-faithful for both.
#[derive(Debug, Default)]
pub struct MemoryStore {
    /// `(block number, encoded block)` in append order.
    blocks: Vec<(u64, Vec<u8>)>,
    /// `(last_block, encoded snapshot)` in append order.
    snapshots: Vec<(u64, Vec<u8>)>,
}

impl MemoryStore {
    /// An empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }
}

fn latest_snapshot(snapshots: &[(u64, Vec<u8>)]) -> Option<&(u64, Vec<u8>)> {
    snapshots
        .iter()
        .enumerate()
        .max_by_key(|(i, (last_block, _))| (*last_block, *i))
        .map(|(_, entry)| entry)
}

impl LedgerStore for MemoryStore {
    fn append_block(&mut self, block: &Block) -> Result<(), StoreError> {
        self.blocks
            .push((block.header.number, codec::encode_block(block)));
        Ok(())
    }

    fn put_snapshot(&mut self, snapshot: &LedgerSnapshot) -> Result<(), StoreError> {
        self.snapshots
            .push((snapshot.last_block, snapshot.to_bytes()));
        Ok(())
    }

    fn compact_up_to(&mut self, block_num: u64) -> Result<u64, StoreError> {
        let Some(&(snapshot_block, _)) = latest_snapshot(&self.snapshots) else {
            return Ok(0);
        };
        let floor = block_num.min(snapshot_block);
        let before = self.blocks.len();
        self.blocks.retain(|(number, _)| *number > floor);
        if self.snapshots.len() > 1 {
            let keep = latest_snapshot(&self.snapshots).expect("non-empty").clone();
            self.snapshots = vec![keep];
        }
        Ok((before - self.blocks.len()) as u64)
    }

    fn load(&self) -> Result<StoredLedger, StoreError> {
        let snapshot = latest_snapshot(&self.snapshots)
            .map(|(_, bytes)| LedgerSnapshot::from_bytes(bytes))
            .transpose()?;
        let blocks = self
            .blocks
            .iter()
            .map(|(_, bytes)| codec::decode_block(bytes))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(StoredLedger { snapshot, blocks })
    }

    fn has_block(&self, number: u64) -> bool {
        self.blocks.iter().any(|(n, _)| *n == number)
    }
}

// ------------------------------------------------------------ aof file

/// One structurally valid record scanned out of an append-only file.
struct RawRecord {
    kind: u8,
    payload: Vec<u8>,
}

/// The total frame length the record header at `pos` claims, when the
/// header itself is plausible (valid kind tag, in-range length) and
/// the claimed frame fits inside `data`. The footer is *not* checked.
fn claimed_frame_len(data: &[u8], pos: usize) -> Option<usize> {
    if data.len() - pos < HEADER_LEN + FOOTER_LEN {
        return None;
    }
    let kind = data[pos];
    if kind != KIND_BLOCK && kind != KIND_SNAPSHOT {
        return None;
    }
    let len_bytes: [u8; 8] = data[pos + 1..pos + 9].try_into().expect("8 bytes");
    let payload_len = usize::try_from(u64::from_be_bytes(len_bytes)).ok()?;
    let total = HEADER_LEN
        .checked_add(payload_len)?
        .checked_add(FOOTER_LEN)?;
    (data.len() - pos >= total).then_some(total)
}

/// The total frame length of a structurally valid record at `pos` —
/// plausible header *and* matching content-hash footer — or `None`.
/// A matching 8-byte footer over arbitrary bytes is a 1-in-2^64
/// accident, so a valid frame right after a bad one means the bad
/// record was corrupted in place rather than torn by a crash.
fn frame_at(data: &[u8], pos: usize) -> Option<usize> {
    let total = claimed_frame_len(data, pos)?;
    let payload = &data[pos + HEADER_LEN..pos + total - FOOTER_LEN];
    let footer = &data[pos + total - FOOTER_LEN..pos + total];
    (footer == &digest(payload)[..FOOTER_LEN]).then_some(total)
}

/// Scans `data` as a sequence of records, returning the decodable
/// prefix and its byte length. Anything after the first short, corrupt
/// or undecodable record is a torn tail — *unless* a structurally
/// valid record follows the bad one, which a crashed append cannot
/// produce: that is in-place corruption and comes back as
/// [`StoreError::CorruptRecord`] so the intact suffix is not silently
/// discarded. (Corruption that destroys the record *header* leaves no
/// trustworthy claimed length to probe past, so it still recovers as
/// a torn tail.)
fn scan_records(data: &[u8]) -> Result<(Vec<RawRecord>, usize), StoreError> {
    let mut records = Vec::new();
    let mut pos = 0;
    while pos < data.len() {
        let Some(total) = frame_at(data, pos) else {
            // Short frame, bad header, or footer mismatch. If the
            // claimed length points at another valid record, the bytes
            // here were corrupted in place, not torn off by a crash.
            if let Some(claimed) = claimed_frame_len(data, pos) {
                if frame_at(data, pos + claimed).is_some() {
                    return Err(StoreError::CorruptRecord { offset: pos as u64 });
                }
            }
            break;
        };
        let kind = data[pos];
        let payload = &data[pos + HEADER_LEN..pos + total - FOOTER_LEN];
        // Structural checks passed; the payload must also decode, so a
        // record written by a buggy or mismatched writer is treated as
        // the torn tail rather than poisoning recovery later.
        let decodes = match kind {
            KIND_BLOCK => codec::decode_block(payload).is_ok(),
            _ => LedgerSnapshot::from_bytes(payload).is_ok(),
        };
        if !decodes {
            if frame_at(data, pos + total).is_some() {
                return Err(StoreError::CorruptRecord { offset: pos as u64 });
            }
            break;
        }
        records.push(RawRecord {
            kind,
            payload: payload.to_vec(),
        });
        pos += total;
    }
    Ok((records, pos))
}

fn encode_record(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + FOOTER_LEN);
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u64).to_be_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&digest(payload)[..FOOTER_LEN]);
    out
}

/// The append-only-file backend: one file of self-validating records.
///
/// See the [module docs](self) for the record layout and the
/// durability model.
#[derive(Debug)]
pub struct AofStore {
    path: PathBuf,
    file: fs::File,
    /// `(block number, byte offset in records)` index rebuilt at open
    /// and maintained on append — compaction and load never rescan for
    /// structure, only re-read payloads.
    records: Vec<(u8, u64, Vec<u8>)>,
    /// When set, every append (and every compaction rewrite) is
    /// `fsync`ed before the call returns.
    fsync: bool,
}

impl AofStore {
    /// Opens (creating if absent) the append-only file at `path`,
    /// truncating any torn tail left by a crash mid-append. Appends
    /// flush but do not `fsync`; use [`AofStore::open_with_fsync`] for
    /// power-loss durability.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] when the file cannot be opened, read
    /// or truncated.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_with_fsync(path, false)
    }

    /// Opens the append-only file at `path` like [`AofStore::open`],
    /// additionally `fsync`ing every appended record when `fsync` is
    /// set so a power loss cannot lose an acknowledged append.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] when the file cannot be opened, read
    /// or truncated.
    pub fn open_with_fsync(path: impl AsRef<Path>, fsync: bool) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err("open", e))?;
        let mut data = Vec::new();
        file.read_to_end(&mut data).map_err(|e| io_err("read", e))?;
        let (raw, valid_len) = scan_records(&data)?;
        if valid_len < data.len() {
            file.set_len(valid_len as u64)
                .map_err(|e| io_err("truncate", e))?;
        }
        file.seek(SeekFrom::Start(valid_len as u64))
            .map_err(|e| io_err("seek", e))?;
        let records = raw
            .into_iter()
            .map(|r| {
                let marker = match r.kind {
                    KIND_BLOCK => {
                        codec::decode_block(&r.payload)
                            .expect("scan validated payload")
                            .header
                            .number
                    }
                    _ => {
                        LedgerSnapshot::from_bytes(&r.payload)
                            .expect("scan validated payload")
                            .last_block
                    }
                };
                (r.kind, marker, r.payload)
            })
            .collect();
        Ok(AofStore {
            path,
            file,
            records,
            fsync,
        })
    }

    /// The file this store appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether appends are `fsync`ed (power-loss durability mode).
    pub fn fsync_enabled(&self) -> bool {
        self.fsync
    }

    fn append_record(&mut self, kind: u8, marker: u64, payload: Vec<u8>) -> Result<(), StoreError> {
        let record = encode_record(kind, &payload);
        self.file
            .write_all(&record)
            .map_err(|e| io_err("append", e))?;
        self.file.flush().map_err(|e| io_err("flush", e))?;
        if self.fsync {
            self.file.sync_data().map_err(|e| io_err("fsync", e))?;
        }
        self.records.push((kind, marker, payload));
        Ok(())
    }

    fn latest_snapshot_block(&self) -> Option<u64> {
        self.records
            .iter()
            .filter(|(kind, _, _)| *kind == KIND_SNAPSHOT)
            .map(|(_, marker, _)| *marker)
            .max()
    }
}

impl LedgerStore for AofStore {
    fn append_block(&mut self, block: &Block) -> Result<(), StoreError> {
        self.append_record(KIND_BLOCK, block.header.number, codec::encode_block(block))
    }

    fn put_snapshot(&mut self, snapshot: &LedgerSnapshot) -> Result<(), StoreError> {
        self.append_record(KIND_SNAPSHOT, snapshot.last_block, snapshot.to_bytes())
    }

    fn compact_up_to(&mut self, block_num: u64) -> Result<u64, StoreError> {
        let Some(snapshot_block) = self.latest_snapshot_block() else {
            return Ok(0);
        };
        let floor = block_num.min(snapshot_block);
        // Keep the latest snapshot record and every block above the
        // floor, preserving append order.
        let latest_snapshot_index = self
            .records
            .iter()
            .enumerate()
            .filter(|(_, (kind, _, _))| *kind == KIND_SNAPSHOT)
            .max_by_key(|(i, (_, marker, _))| (*marker, *i))
            .map(|(i, _)| i)
            .expect("snapshot exists");
        let mut kept = Vec::with_capacity(self.records.len());
        let mut dropped_blocks = 0u64;
        for (i, record) in self.records.iter().enumerate() {
            let keep = match record.0 {
                KIND_SNAPSHOT => i == latest_snapshot_index,
                _ => record.1 > floor,
            };
            if keep {
                kept.push(record.clone());
            } else if record.0 == KIND_BLOCK {
                dropped_blocks += 1;
            }
        }
        if kept.len() == self.records.len() {
            return Ok(0);
        }
        // Rewrite through a temp file + rename so a crash mid-compaction
        // leaves either the old or the new file, never a hybrid.
        let tmp_path = self.path.with_extension("compact-tmp");
        let mut tmp = fs::File::create(&tmp_path).map_err(|e| io_err("compact-create", e))?;
        for (kind, _, payload) in &kept {
            tmp.write_all(&encode_record(*kind, payload))
                .map_err(|e| io_err("compact-write", e))?;
        }
        tmp.flush().map_err(|e| io_err("compact-flush", e))?;
        if self.fsync {
            tmp.sync_all().map_err(|e| io_err("compact-fsync", e))?;
        }
        drop(tmp);
        fs::rename(&tmp_path, &self.path).map_err(|e| io_err("compact-rename", e))?;
        let mut file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)
            .map_err(|e| io_err("compact-reopen", e))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| io_err("compact-seek", e))?;
        self.file = file;
        self.records = kept;
        Ok(dropped_blocks)
    }

    fn load(&self) -> Result<StoredLedger, StoreError> {
        let latest = self
            .records
            .iter()
            .enumerate()
            .filter(|(_, (kind, _, _))| *kind == KIND_SNAPSHOT)
            .max_by_key(|(i, (_, marker, _))| (*marker, *i))
            .map(|(_, (_, _, payload))| LedgerSnapshot::from_bytes(payload))
            .transpose()?;
        let blocks = self
            .records
            .iter()
            .filter(|(kind, _, _)| *kind == KIND_BLOCK)
            .map(|(_, _, payload)| codec::decode_block(payload))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(StoredLedger {
            snapshot: latest,
            blocks,
        })
    }

    fn has_block(&self, number: u64) -> bool {
        self.records
            .iter()
            .any(|(kind, marker, _)| *kind == KIND_BLOCK && *marker == number)
    }
}

/// Groups loaded blocks by number, last append winning, as a
/// convenience for recovery code that wants ordered, de-duplicated
/// blocks.
pub fn blocks_by_number(blocks: Vec<Block>) -> BTreeMap<u64, Block> {
    let mut by_number = BTreeMap::new();
    for block in blocks {
        by_number.insert(block.header.number, block);
    }
    by_number
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Blockchain;
    use crate::rwset::ReadWriteSet;
    use crate::transaction::{Transaction, TxId};
    use fabriccrdt_crypto::Identity;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let unique = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "fabriccrdt-store-{}-{tag}-{unique}.aof",
            std::process::id()
        ))
    }

    fn tx(n: u64) -> Transaction {
        let client = Identity::new("client", "org1");
        let mut rwset = ReadWriteSet::new();
        rwset.writes.put(format!("k{n}"), vec![n as u8; 4]);
        Transaction {
            id: TxId::derive(&client, n, "cc"),
            client,
            chaincode: "cc".into(),
            rwset,
            endorsements: Vec::new(),
        }
    }

    /// A small, properly chained block sequence (numbers 0..count).
    fn chained_blocks(count: u64) -> Vec<Block> {
        let mut chain = Blockchain::new();
        for n in 0..count {
            let block = Block::assemble(n, chain.tip_hash(), vec![tx(n + 1)]);
            chain.append(block).unwrap();
        }
        chain.iter().cloned().collect()
    }

    fn sample_snapshot(last_block: u64) -> LedgerSnapshot {
        LedgerSnapshot {
            last_block,
            tip_hash: [last_block as u8; 32],
            state: vec![1, 2, 3],
            history: vec![4, 5],
            committed_ids: vec![6],
            frontiers: vec![7, 8, 9, 10],
        }
    }

    #[test]
    fn snapshot_byte_roundtrip() {
        let snapshot = sample_snapshot(42);
        let bytes = snapshot.to_bytes();
        assert_eq!(bytes.len(), snapshot.encoded_len());
        assert_eq!(LedgerSnapshot::from_bytes(&bytes).unwrap(), snapshot);
        for cut in 0..bytes.len() {
            assert!(LedgerSnapshot::from_bytes(&bytes[..cut]).is_err());
        }
        let mut wrong_version = bytes.clone();
        wrong_version[0] = 99;
        assert!(LedgerSnapshot::from_bytes(&wrong_version).is_err());
    }

    #[test]
    fn memory_store_roundtrip_and_compaction() {
        let mut store = MemoryStore::new();
        let blocks = chained_blocks(6);
        for block in &blocks {
            store.append_block(block).unwrap();
        }
        // No snapshot yet: compaction refuses to drop anything.
        assert_eq!(store.compact_up_to(100).unwrap(), 0);
        assert_eq!(store.load().unwrap().blocks, blocks);

        store.put_snapshot(&sample_snapshot(3)).unwrap();
        // Clamped to the snapshot even when asked for more.
        assert_eq!(store.compact_up_to(100).unwrap(), 4);
        let loaded = store.load().unwrap();
        assert_eq!(loaded.snapshot.unwrap().last_block, 3);
        assert_eq!(loaded.blocks, blocks[4..].to_vec());
    }

    #[test]
    fn latest_snapshot_wins() {
        let mut store = MemoryStore::new();
        store.put_snapshot(&sample_snapshot(2)).unwrap();
        store.put_snapshot(&sample_snapshot(5)).unwrap();
        store.put_snapshot(&sample_snapshot(4)).unwrap();
        assert_eq!(store.load().unwrap().snapshot.unwrap().last_block, 5);
    }

    #[test]
    fn aof_roundtrip_across_reopen() {
        let path = temp_path("roundtrip");
        let blocks = chained_blocks(4);
        {
            let mut store = AofStore::open(&path).unwrap();
            for block in &blocks {
                store.append_block(block).unwrap();
            }
            store.put_snapshot(&sample_snapshot(1)).unwrap();
        }
        let store = AofStore::open(&path).unwrap();
        let loaded = store.load().unwrap();
        assert_eq!(loaded.blocks, blocks);
        assert_eq!(loaded.snapshot.unwrap(), sample_snapshot(1));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn aof_truncates_torn_tail_and_stays_appendable() {
        let path = temp_path("torn");
        let blocks = chained_blocks(3);
        {
            let mut store = AofStore::open(&path).unwrap();
            for block in &blocks {
                store.append_block(block).unwrap();
            }
        }
        // Simulate a crash mid-append: chop bytes off the last record.
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 5]).unwrap();
        {
            let mut store = AofStore::open(&path).unwrap();
            let loaded = store.load().unwrap();
            assert_eq!(loaded.blocks, blocks[..2].to_vec());
            // The torn bytes are gone from disk, and appends resume
            // cleanly at the truncation point.
            store.append_block(&blocks[2]).unwrap();
        }
        let store = AofStore::open(&path).unwrap();
        assert_eq!(store.load().unwrap().blocks, blocks);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn aof_rejects_flipped_footer_bytes() {
        let path = temp_path("footer");
        let blocks = chained_blocks(2);
        {
            let mut store = AofStore::open(&path).unwrap();
            for block in &blocks {
                store.append_block(block).unwrap();
            }
        }
        let mut bytes = fs::read(&path).unwrap();
        // Flip a payload byte of the *last* record: its footer no
        // longer matches, so recovery truncates that record away.
        let len = bytes.len();
        bytes[len - FOOTER_LEN - 1] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let store = AofStore::open(&path).unwrap();
        assert_eq!(store.load().unwrap().blocks, blocks[..1].to_vec());
        assert_eq!(
            fs::metadata(&path).unwrap().len() as usize,
            bytes.len() - (HEADER_LEN + codec::encode_block(&blocks[1]).len() + FOOTER_LEN)
        );
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn aof_mid_file_corruption_is_a_typed_error_not_truncation() {
        let path = temp_path("midfile");
        let blocks = chained_blocks(3);
        {
            let mut store = AofStore::open(&path).unwrap();
            for block in &blocks {
                store.append_block(block).unwrap();
            }
        }
        let pristine = fs::read(&path).unwrap();
        let first_frame = HEADER_LEN + codec::encode_block(&blocks[0]).len() + FOOTER_LEN;

        // Flip a payload byte of the *first* record: two intact
        // records still follow, so this is in-place corruption and
        // open must refuse rather than truncate the whole file away.
        let mut bytes = pristine.clone();
        bytes[HEADER_LEN] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(
            AofStore::open(&path).unwrap_err(),
            StoreError::CorruptRecord { offset: 0 }
        );
        // The failed open left the file untouched for forensics.
        assert_eq!(fs::read(&path).unwrap(), bytes);

        // Same for a corrupt *middle* record — the error names its
        // byte offset.
        let mut bytes = pristine.clone();
        bytes[first_frame + HEADER_LEN] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(
            AofStore::open(&path).unwrap_err(),
            StoreError::CorruptRecord {
                offset: first_frame as u64
            }
        );

        // The pristine file still opens to all three blocks.
        fs::write(&path, &pristine).unwrap();
        assert_eq!(
            AofStore::open(&path).unwrap().load().unwrap().blocks,
            blocks
        );
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn aof_garbage_file_recovers_to_empty() {
        let path = temp_path("garbage");
        fs::write(&path, b"this was never an aof").unwrap();
        let mut store = AofStore::open(&path).unwrap();
        assert_eq!(store.load().unwrap().blocks, Vec::<Block>::new());
        assert_eq!(fs::metadata(&path).unwrap().len(), 0);
        // Still usable after recovery.
        let blocks = chained_blocks(1);
        store.append_block(&blocks[0]).unwrap();
        assert_eq!(store.load().unwrap().blocks, blocks);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn aof_compaction_drops_covered_blocks() {
        let path = temp_path("compact");
        let blocks = chained_blocks(6);
        let mut store = AofStore::open(&path).unwrap();
        for block in &blocks {
            store.append_block(block).unwrap();
        }
        assert_eq!(store.compact_up_to(100).unwrap(), 0, "no snapshot yet");
        store.put_snapshot(&sample_snapshot(2)).unwrap();
        store.put_snapshot(&sample_snapshot(4)).unwrap();
        let before = fs::metadata(&path).unwrap().len();
        assert_eq!(store.compact_up_to(4).unwrap(), 5);
        assert!(fs::metadata(&path).unwrap().len() < before);
        let loaded = store.load().unwrap();
        assert_eq!(loaded.snapshot.unwrap().last_block, 4);
        assert_eq!(loaded.blocks, blocks[5..].to_vec());
        drop(store);
        // The compacted file reopens to the same contents.
        let reopened = AofStore::open(&path).unwrap();
        let loaded = reopened.load().unwrap();
        assert_eq!(loaded.snapshot.unwrap().last_block, 4);
        assert_eq!(loaded.blocks, blocks[5..].to_vec());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn aof_fsync_mode_survives_simulated_crash_reopen() {
        let path = temp_path("fsync");
        let blocks = chained_blocks(5);
        {
            let mut store = AofStore::open_with_fsync(&path, true).unwrap();
            assert!(store.fsync_enabled());
            for block in &blocks {
                store.append_block(block).unwrap();
            }
            store.put_snapshot(&sample_snapshot(2)).unwrap();
            assert_eq!(store.compact_up_to(2).unwrap(), 3);
            // Simulated crash: drop the handle with no clean shutdown.
        }
        let store = AofStore::open(&path).unwrap();
        let loaded = store.load().unwrap();
        assert_eq!(loaded.snapshot.unwrap().last_block, 2);
        assert_eq!(loaded.blocks, blocks[3..].to_vec());
        // The fsynced file is byte-for-byte what the non-fsync mode
        // writes — the flag changes durability, not the format.
        let other = temp_path("fsync-mirror");
        {
            let mut store = AofStore::open(&other).unwrap();
            for block in &blocks {
                store.append_block(block).unwrap();
            }
            store.put_snapshot(&sample_snapshot(2)).unwrap();
            store.compact_up_to(2).unwrap();
        }
        assert_eq!(fs::read(&path).unwrap(), fs::read(&other).unwrap());
        fs::remove_file(&path).unwrap();
        fs::remove_file(&other).unwrap();
    }

    #[test]
    fn has_block_probes_record_index() {
        let path = temp_path("hasblock");
        let blocks = chained_blocks(4);
        let mut aof = AofStore::open(&path).unwrap();
        let mut memory = MemoryStore::new();
        for block in &blocks {
            aof.append_block(block).unwrap();
            memory.append_block(block).unwrap();
        }
        aof.put_snapshot(&sample_snapshot(1)).unwrap();
        memory.put_snapshot(&sample_snapshot(1)).unwrap();
        aof.compact_up_to(1).unwrap();
        memory.compact_up_to(1).unwrap();
        for n in 0..5 {
            assert_eq!(aof.has_block(n), (2..=3).contains(&n), "aof block {n}");
            assert_eq!(aof.has_block(n), memory.has_block(n), "backends agree");
        }
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn aof_and_memory_agree() {
        let path = temp_path("agree");
        let blocks = chained_blocks(5);
        let mut aof = AofStore::open(&path).unwrap();
        let mut memory = MemoryStore::new();
        for block in &blocks {
            aof.append_block(block).unwrap();
            memory.append_block(block).unwrap();
        }
        aof.put_snapshot(&sample_snapshot(2)).unwrap();
        memory.put_snapshot(&sample_snapshot(2)).unwrap();
        assert_eq!(
            aof.compact_up_to(2).unwrap(),
            memory.compact_up_to(2).unwrap()
        );
        assert_eq!(aof.load().unwrap(), memory.load().unwrap());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn blocks_by_number_dedups_last_wins() {
        let blocks = chained_blocks(3);
        let mut doubled = blocks.clone();
        doubled.extend(blocks.iter().cloned());
        let by_number = blocks_by_number(doubled);
        assert_eq!(by_number.len(), 3);
        assert_eq!(by_number.keys().copied().collect::<Vec<_>>(), vec![0, 1, 2]);
    }
}
