//! Blocks: header with hash chaining, transactions, validation codes.
//!
//! Fabric appends *every* transaction of a block — valid or invalid — to
//! the blockchain and records a per-transaction validation code; only
//! valid transactions update the world state (§2.1, step 3).

use std::fmt;

use fabriccrdt_crypto::{sha256, Digest, MerkleTree};

use crate::transaction::Transaction;

/// Why a transaction was accepted or rejected at commit time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValidationCode {
    /// Passed endorsement-policy and MVCC validation.
    Valid,
    /// Read-set version mismatch (§3, "MVCC conflict").
    MvccConflict,
    /// Endorsement policy not satisfied or a signature failed to verify.
    EndorsementPolicyFailure,
    /// A transaction with the same id was already committed.
    DuplicateTxId,
    /// Merged by the FabricCRDT pathway (Algorithm 1) and committed; kept
    /// distinct from [`ValidationCode::Valid`] so experiments can report
    /// merges separately. Counts as successful.
    ValidMerged,
    /// Dropped by the reordering orderer before block formation
    /// (Fabric++-style early abort of unsalvageable conflict cycles —
    /// the baseline of Sharma et al., discussed in the paper's §8).
    EarlyAborted,
    /// The delivered block's data hash did not cover its transactions —
    /// tampering between orderer and peer. The whole block is rejected;
    /// nothing commits.
    TamperedBlock,
}

impl ValidationCode {
    /// Whether the transaction's writes were applied to the world state.
    pub fn is_success(self) -> bool {
        matches!(self, ValidationCode::Valid | ValidationCode::ValidMerged)
    }
}

impl fmt::Display for ValidationCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValidationCode::Valid => "VALID",
            ValidationCode::MvccConflict => "MVCC_READ_CONFLICT",
            ValidationCode::EndorsementPolicyFailure => "ENDORSEMENT_POLICY_FAILURE",
            ValidationCode::DuplicateTxId => "DUPLICATE_TXID",
            ValidationCode::ValidMerged => "VALID_MERGED",
            ValidationCode::EarlyAborted => "EARLY_ABORTED",
            ValidationCode::TamperedBlock => "TAMPERED_BLOCK",
        };
        f.write_str(s)
    }
}

/// Block header: number, previous block hash, data hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockHeader {
    /// Block number; the genesis block is 0.
    pub number: u64,
    /// Hash of the previous block's header (all zeroes for genesis).
    pub previous_hash: Digest,
    /// Merkle root over the serialized transactions.
    pub data_hash: Digest,
}

impl BlockHeader {
    /// The header's hash, chained into the next block.
    pub fn hash(&self) -> Digest {
        let mut h = sha256::Sha256::new();
        h.update(&self.number.to_be_bytes());
        h.update(&self.previous_hash);
        h.update(&self.data_hash);
        h.finalize()
    }
}

/// A block: header, transactions and (after commit) validation codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The header.
    pub header: BlockHeader,
    /// Ordered transactions.
    pub transactions: Vec<Transaction>,
    /// One code per transaction, filled by the committing peer. Empty for
    /// a block fresh from the orderer.
    pub validation_codes: Vec<ValidationCode>,
}

impl Block {
    /// The genesis block: block 0, no transactions. Every chain starts
    /// with it; user transactions begin at block 1, so no committed value
    /// can collide with the `Height::genesis()` version of seeded keys.
    pub fn genesis() -> Self {
        Block::assemble(0, [0; 32], Vec::new())
    }

    /// Assembles a block from ordered transactions, computing the data
    /// hash (orderer step 4 in Figure 1).
    pub fn assemble(number: u64, previous_hash: Digest, transactions: Vec<Transaction>) -> Self {
        let data_hash = Self::compute_data_hash(&transactions);
        Block {
            header: BlockHeader {
                number,
                previous_hash,
                data_hash,
            },
            transactions,
            validation_codes: Vec::new(),
        }
    }

    /// Merkle root over the transactions' canonical bytes.
    pub fn compute_data_hash(transactions: &[Transaction]) -> Digest {
        MerkleTree::from_leaves(transactions.iter().map(Transaction::to_bytes)).root()
    }

    /// The block hash (header hash).
    pub fn hash(&self) -> Digest {
        self.header.hash()
    }

    /// Whether the stored data hash matches the transactions.
    pub fn data_hash_is_valid(&self) -> bool {
        Self::compute_data_hash(&self.transactions) == self.header.data_hash
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// Whether the block carries no transactions.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Count of successfully committed transactions (requires validation
    /// codes to be filled).
    pub fn successful_count(&self) -> usize {
        self.validation_codes
            .iter()
            .filter(|c| c.is_success())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rwset::ReadWriteSet;
    use crate::transaction::TxId;
    use fabriccrdt_crypto::Identity;

    fn tx(n: u64) -> Transaction {
        let client = Identity::new("client", "org1");
        let mut rwset = ReadWriteSet::new();
        rwset.writes.put(format!("k{n}"), vec![n as u8]);
        Transaction {
            id: TxId::derive(&client, n, "cc"),
            client,
            chaincode: "cc".into(),
            rwset,
            endorsements: Vec::new(),
        }
    }

    #[test]
    fn data_hash_commits_to_transactions() {
        let block = Block::assemble(1, [0; 32], vec![tx(1), tx(2)]);
        assert!(block.data_hash_is_valid());
        let mut tampered = block.clone();
        tampered.transactions[0]
            .rwset
            .writes
            .put("evil", b"x".to_vec());
        assert!(!tampered.data_hash_is_valid());
    }

    #[test]
    fn header_hash_changes_with_any_field() {
        let a = Block::assemble(1, [0; 32], vec![tx(1)]);
        let b = Block::assemble(2, [0; 32], vec![tx(1)]);
        let c = Block::assemble(1, [1; 32], vec![tx(1)]);
        let d = Block::assemble(1, [0; 32], vec![tx(2)]);
        let hashes = [a.hash(), b.hash(), c.hash(), d.hash()];
        for i in 0..hashes.len() {
            for j in i + 1..hashes.len() {
                assert_ne!(hashes[i], hashes[j], "{i} vs {j}");
            }
        }
    }

    #[test]
    fn empty_block_is_well_formed() {
        let block = Block::assemble(0, [0; 32], vec![]);
        assert!(block.is_empty());
        assert!(block.data_hash_is_valid());
        assert_eq!(block.successful_count(), 0);
    }

    #[test]
    fn successful_count_uses_codes() {
        let mut block = Block::assemble(1, [0; 32], vec![tx(1), tx(2), tx(3)]);
        block.validation_codes = vec![
            ValidationCode::Valid,
            ValidationCode::MvccConflict,
            ValidationCode::ValidMerged,
        ];
        assert_eq!(block.successful_count(), 2);
    }

    #[test]
    fn validation_code_success_semantics() {
        assert!(ValidationCode::Valid.is_success());
        assert!(ValidationCode::ValidMerged.is_success());
        assert!(!ValidationCode::MvccConflict.is_success());
        assert!(!ValidationCode::EndorsementPolicyFailure.is_success());
        assert!(!ValidationCode::DuplicateTxId.is_success());
        assert!(!ValidationCode::EarlyAborted.is_success());
        assert!(!ValidationCode::TamperedBlock.is_success());
    }

    #[test]
    fn validation_code_display() {
        assert_eq!(
            ValidationCode::MvccConflict.to_string(),
            "MVCC_READ_CONFLICT"
        );
    }
}
