//! The versioned world state database.
//!
//! Fabric peers maintain a world state — the materialized result of
//! executing all valid transactions in the blockchain — in a state
//! database (CouchDB in the paper's deployment). The reproduction keeps
//! it in memory: MVCC validation and chaincode execution only need
//! `key → (value, version)` lookups and batched writes.

use std::collections::BTreeMap;

use crate::version::Height;

/// A value together with the height of the transaction that wrote it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionedValue {
    /// The stored bytes (chaincodes store canonical JSON).
    pub value: Vec<u8>,
    /// Height of the committing transaction.
    pub version: Height,
}

/// The world state: a versioned key-value store.
///
/// Backed by a `BTreeMap` for deterministic iteration (range scans in
/// examples, stable debugging output).
///
/// # Examples
///
/// ```
/// use fabriccrdt_ledger::{WorldState, Height};
///
/// let mut ws = WorldState::new();
/// ws.put("device1".into(), br#"{"t":"20"}"#.to_vec(), Height::new(1, 0));
/// ws.put("device1".into(), br#"{"t":"21"}"#.to_vec(), Height::new(2, 3));
/// assert_eq!(ws.version("device1"), Some(Height::new(2, 3)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorldState {
    entries: BTreeMap<String, VersionedValue>,
}

impl WorldState {
    /// An empty world state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a value.
    pub fn value(&self, key: &str) -> Option<&[u8]> {
        self.entries.get(key).map(|e| e.value.as_slice())
    }

    /// Looks up a value's version.
    pub fn version(&self, key: &str) -> Option<Height> {
        self.entries.get(key).map(|e| e.version)
    }

    /// Looks up value and version together.
    pub fn get(&self, key: &str) -> Option<&VersionedValue> {
        self.entries.get(key)
    }

    /// Writes a value at the given height, returning the previous entry.
    pub fn put(&mut self, key: String, value: Vec<u8>, version: Height) -> Option<VersionedValue> {
        self.entries.insert(key, VersionedValue { value, version })
    }

    /// Deletes a key, returning the previous entry (Fabric models deletes
    /// as write-set entries with a delete marker).
    pub fn delete(&mut self, key: &str) -> Option<VersionedValue> {
        self.entries.remove(key)
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the state is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(key, entry)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &VersionedValue)> {
        self.entries.iter()
    }

    /// Range scan over keys in `[start, end)` — Fabric's
    /// `GetStateByRange` equivalent, used by examples.
    pub fn range<'a>(
        &'a self,
        start: &str,
        end: &str,
    ) -> impl Iterator<Item = (&'a String, &'a VersionedValue)> {
        self.entries.range(start.to_owned()..end.to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_lookup() {
        let ws = WorldState::new();
        assert!(ws.value("k").is_none());
        assert!(ws.version("k").is_none());
        assert!(ws.is_empty());
    }

    #[test]
    fn put_overwrites_and_returns_previous() {
        let mut ws = WorldState::new();
        assert!(ws
            .put("k".into(), b"v1".to_vec(), Height::new(1, 0))
            .is_none());
        let prev = ws
            .put("k".into(), b"v2".to_vec(), Height::new(2, 0))
            .unwrap();
        assert_eq!(prev.value, b"v1");
        assert_eq!(prev.version, Height::new(1, 0));
        assert_eq!(ws.value("k"), Some(&b"v2"[..]));
        assert_eq!(ws.len(), 1);
    }

    #[test]
    fn delete_removes() {
        let mut ws = WorldState::new();
        ws.put("k".into(), b"v".to_vec(), Height::new(1, 0));
        assert!(ws.delete("k").is_some());
        assert!(ws.value("k").is_none());
        assert!(ws.delete("k").is_none());
    }

    #[test]
    fn range_scan() {
        let mut ws = WorldState::new();
        for key in ["a1", "a2", "b1", "c1"] {
            ws.put(key.into(), b"v".to_vec(), Height::genesis());
        }
        let keys: Vec<&String> = ws.range("a1", "b1").map(|(k, _)| k).collect();
        assert_eq!(keys, ["a1", "a2"]);
    }

    #[test]
    fn iteration_is_sorted() {
        let mut ws = WorldState::new();
        ws.put("z".into(), b"1".to_vec(), Height::genesis());
        ws.put("a".into(), b"2".to_vec(), Height::genesis());
        let keys: Vec<&String> = ws.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["a", "z"]);
    }
}
