//! The key history database.
//!
//! Fabric peers maintain a history index alongside the state database so
//! chaincodes can call `GetHistoryForKey` — every value a key has held,
//! with the committing transaction's height. Like Fabric's, this index
//! is derived purely from committed blocks (valid transactions' write
//! sets), so replaying a chain rebuilds it exactly.

use std::collections::BTreeMap;

use crate::block::Block;
use crate::version::Height;

/// One historical modification of a key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryEntry {
    /// Height of the committing transaction.
    pub height: Height,
    /// The written value; `None` records a delete.
    pub value: Option<Vec<u8>>,
}

/// Append-only per-key modification history, built from committed
/// blocks.
///
/// # Examples
///
/// ```
/// use fabriccrdt_ledger::history::HistoryDb;
///
/// let db = HistoryDb::new();
/// assert!(db.history("never-written").is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistoryDb {
    entries: BTreeMap<String, Vec<HistoryEntry>>,
}

impl HistoryDb {
    /// An empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Indexes a committed block: every *successful* transaction's
    /// write set is appended in block order. (Invalid transactions are
    /// in the chain but never touched the state, so they are not in the
    /// history — exactly Fabric's behaviour.)
    ///
    /// # Panics
    ///
    /// Panics if the block's validation codes have not been filled.
    pub fn record_block(&mut self, block: &Block) {
        assert_eq!(
            block.validation_codes.len(),
            block.transactions.len(),
            "record_block requires a validated block"
        );
        for (tx_num, (tx, code)) in block
            .transactions
            .iter()
            .zip(&block.validation_codes)
            .enumerate()
        {
            if !code.is_success() {
                continue;
            }
            let height = Height::new(block.header.number, tx_num as u64);
            for (key, entry) in tx.rwset.writes.iter() {
                let value = (!entry.is_delete).then(|| entry.value.clone());
                self.entries
                    .entry(key.clone())
                    .or_default()
                    .push(HistoryEntry { height, value });
            }
        }
    }

    /// The full modification history of `key`, oldest first
    /// (Fabric's `GetHistoryForKey`).
    pub fn history(&self, key: &str) -> &[HistoryEntry] {
        self.entries.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of keys with any history.
    pub fn keys(&self) -> usize {
        self.entries.len()
    }

    /// Total modifications recorded.
    pub fn total_entries(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// Iterates `(key, entries)` in key order (for snapshot encoding).
    pub fn iter(&self) -> impl Iterator<Item = (&String, &[HistoryEntry])> {
        self.entries.iter().map(|(k, v)| (k, v.as_slice()))
    }

    /// Drops every entry committed at block `block_num` or below
    /// (snapshot GC: those modifications are covered by a snapshot all
    /// replicas acknowledged). Keys left without entries are removed.
    /// Returns how many entries were dropped.
    pub fn prune_up_to(&mut self, block_num: u64) -> usize {
        let mut dropped = 0;
        self.entries.retain(|_, entries| {
            let before = entries.len();
            entries.retain(|e| e.height.block_num > block_num);
            dropped += before - entries.len();
            !entries.is_empty()
        });
        dropped
    }

    /// Restores a key's history verbatim (snapshot decoding). Entries
    /// must already be in commit order; empty vectors are ignored so
    /// round-trips stay canonical.
    pub(crate) fn insert_entries(&mut self, key: String, entries: Vec<HistoryEntry>) {
        if !entries.is_empty() {
            self.entries.insert(key, entries);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::ValidationCode;
    use crate::rwset::ReadWriteSet;
    use crate::transaction::{Transaction, TxId};
    use fabriccrdt_crypto::Identity;

    fn tx(n: u64, key: &str, value: &[u8], delete: bool) -> Transaction {
        let client = Identity::new("client", "org1");
        let mut rwset = ReadWriteSet::new();
        if delete {
            rwset.writes.delete(key);
        } else {
            rwset.writes.put(key, value.to_vec());
        }
        Transaction {
            id: TxId::derive(&client, n, "cc"),
            client,
            chaincode: "cc".into(),
            rwset,
            endorsements: Vec::new(),
        }
    }

    #[test]
    fn records_successful_writes_in_order() {
        let mut db = HistoryDb::new();
        let mut block = Block::assemble(
            1,
            [0; 32],
            vec![tx(1, "k", b"v1", false), tx(2, "k", b"v2", false)],
        );
        block.validation_codes = vec![ValidationCode::Valid, ValidationCode::Valid];
        db.record_block(&block);
        let history = db.history("k");
        assert_eq!(history.len(), 2);
        assert_eq!(history[0].value.as_deref(), Some(&b"v1"[..]));
        assert_eq!(history[0].height, Height::new(1, 0));
        assert_eq!(history[1].value.as_deref(), Some(&b"v2"[..]));
        assert_eq!(history[1].height, Height::new(1, 1));
    }

    #[test]
    fn failed_transactions_leave_no_history() {
        let mut db = HistoryDb::new();
        let mut block = Block::assemble(
            1,
            [0; 32],
            vec![tx(1, "k", b"good", false), tx(2, "k", b"evil", false)],
        );
        block.validation_codes = vec![ValidationCode::Valid, ValidationCode::MvccConflict];
        db.record_block(&block);
        assert_eq!(db.history("k").len(), 1);
        assert_eq!(db.total_entries(), 1);
    }

    #[test]
    fn deletes_recorded_as_none() {
        let mut db = HistoryDb::new();
        let mut block = Block::assemble(
            1,
            [0; 32],
            vec![tx(1, "k", b"v", false), tx(2, "k", b"", true)],
        );
        block.validation_codes = vec![ValidationCode::Valid, ValidationCode::Valid];
        db.record_block(&block);
        let history = db.history("k");
        assert_eq!(history[1].value, None);
    }

    #[test]
    fn replay_rebuilds_identical_history() {
        let blocks: Vec<Block> = (1..4u64)
            .map(|n| {
                let mut b = Block::assemble(n, [0; 32], vec![tx(n * 2, "k", &[n as u8], false)]);
                b.validation_codes = vec![ValidationCode::Valid];
                b
            })
            .collect();
        let mut a = HistoryDb::new();
        let mut b = HistoryDb::new();
        for block in &blocks {
            a.record_block(block);
        }
        for block in &blocks {
            b.record_block(block);
        }
        assert_eq!(a, b);
        assert_eq!(a.history("k").len(), 3);
    }

    #[test]
    #[should_panic(expected = "validated block")]
    fn unvalidated_block_panics() {
        let block = Block::assemble(1, [0; 32], vec![tx(1, "k", b"v", false)]);
        HistoryDb::new().record_block(&block);
    }

    #[test]
    fn prune_drops_only_covered_blocks() {
        let mut db = HistoryDb::new();
        for n in 1..=4u64 {
            let key = if n % 2 == 0 { "even" } else { "odd" };
            let mut block = Block::assemble(n, [0; 32], vec![tx(n, key, &[n as u8], false)]);
            block.validation_codes = vec![ValidationCode::Valid];
            db.record_block(&block);
        }
        assert_eq!(db.prune_up_to(2), 2);
        assert_eq!(db.keys(), 2);
        assert_eq!(db.history("odd").len(), 1);
        assert_eq!(db.history("odd")[0].height, Height::new(3, 0));
        assert_eq!(db.history("even")[0].height, Height::new(4, 0));
        // Pruning everything removes emptied keys.
        assert_eq!(db.prune_up_to(10), 2);
        assert_eq!(db.keys(), 0);
        assert_eq!(db.prune_up_to(10), 0);
    }
}
