//! Endorsed transactions.
//!
//! After collecting endorsements, a Fabric client assembles a transaction
//! from the proposal payload, the endorsing peers' signatures, and
//! metadata, then submits it to the ordering service (§2.1, step 2).

use std::fmt;

use fabriccrdt_crypto::{sha256, Identity, Signature};

use crate::rwset::ReadWriteSet;

/// A transaction identifier: SHA-256 over the client identity, a client
/// nonce and the chaincode name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxId(pub [u8; 32]);

impl TxId {
    /// Derives a transaction id.
    pub fn derive(client: &Identity, nonce: u64, chaincode: &str) -> Self {
        let mut h = sha256::Sha256::new();
        h.update(client.to_string().as_bytes());
        h.update(&nonce.to_be_bytes());
        h.update(chaincode.as_bytes());
        TxId(h.finalize())
    }

    /// Short hex prefix for logs.
    pub fn short(&self) -> String {
        fabriccrdt_crypto::hex::encode(&self.0[..4])
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&fabriccrdt_crypto::hex::encode(&self.0))
    }
}

/// An endorsement: a peer's signature over the proposal response payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Endorsement {
    /// The endorsing peer.
    pub endorser: Identity,
    /// Signature over the read-write set bytes.
    pub signature: Signature,
}

/// An endorsed transaction ready for ordering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// Content-derived identifier.
    pub id: TxId,
    /// Submitting client.
    pub client: Identity,
    /// Invoked chaincode name.
    pub chaincode: String,
    /// Simulation result all endorsers agreed on.
    pub rwset: ReadWriteSet,
    /// Collected endorsements.
    pub endorsements: Vec<Endorsement>,
}

impl Transaction {
    /// Canonical byte encoding of the parts covered by endorsement
    /// signatures (the proposal response payload).
    pub fn response_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.id.0);
        out.extend_from_slice(self.chaincode.as_bytes());
        out.push(0);
        out.extend_from_slice(&self.rwset.to_bytes());
        out
    }

    /// Canonical bytes of the whole transaction, input to block data
    /// hashes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.response_payload();
        out.extend_from_slice(&(self.endorsements.len() as u64).to_be_bytes());
        for e in &self.endorsements {
            out.extend_from_slice(e.endorser.to_string().as_bytes());
            out.push(0);
            out.extend_from_slice(&e.signature.0);
        }
        out
    }

    /// Whether any write-set entry is CRDT-flagged — a "CRDT transaction"
    /// in the paper's terms (§4.3).
    pub fn is_crdt(&self) -> bool {
        self.rwset.writes.has_crdt_writes()
    }

    /// Organizations that endorsed this transaction.
    pub fn endorsing_orgs(&self) -> Vec<&str> {
        let mut orgs: Vec<&str> = self
            .endorsements
            .iter()
            .map(|e| e.endorser.org.as_str())
            .collect();
        orgs.sort_unstable();
        orgs.dedup();
        orgs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabriccrdt_crypto::KeyPair;

    fn sample_tx(crdt: bool) -> Transaction {
        let client = Identity::new("client1", "org1");
        let mut rwset = ReadWriteSet::new();
        rwset.reads.record("k", None);
        if crdt {
            rwset.writes.put_crdt("k", b"v".to_vec());
        } else {
            rwset.writes.put("k", b"v".to_vec());
        }
        let id = TxId::derive(&client, 1, "iot");
        Transaction {
            id,
            client,
            chaincode: "iot".into(),
            rwset,
            endorsements: Vec::new(),
        }
    }

    #[test]
    fn tx_ids_are_unique_per_nonce_and_client() {
        let c1 = Identity::new("client1", "org1");
        let c2 = Identity::new("client2", "org1");
        assert_ne!(TxId::derive(&c1, 1, "cc"), TxId::derive(&c1, 2, "cc"));
        assert_ne!(TxId::derive(&c1, 1, "cc"), TxId::derive(&c2, 1, "cc"));
        assert_eq!(TxId::derive(&c1, 1, "cc"), TxId::derive(&c1, 1, "cc"));
    }

    #[test]
    fn is_crdt_reflects_write_flags() {
        assert!(sample_tx(true).is_crdt());
        assert!(!sample_tx(false).is_crdt());
    }

    #[test]
    fn endorsement_signature_covers_payload() {
        let mut tx = sample_tx(false);
        let peer = KeyPair::derive(Identity::new("peer0", "org1"));
        let sig = peer.sign(&tx.response_payload());
        tx.endorsements.push(Endorsement {
            endorser: peer.identity().clone(),
            signature: sig,
        });
        assert!(peer
            .verify(&tx.response_payload(), &tx.endorsements[0].signature)
            .is_ok());
        // Tampering with the rwset invalidates the endorsement.
        tx.rwset.writes.put("k", b"tampered".to_vec());
        assert!(peer
            .verify(&tx.response_payload(), &tx.endorsements[0].signature)
            .is_err());
    }

    #[test]
    fn endorsing_orgs_deduplicates() {
        let mut tx = sample_tx(false);
        for (name, org) in [("p0", "org1"), ("p1", "org1"), ("p0", "org2")] {
            let peer = KeyPair::derive(Identity::new(name, org));
            let sig = peer.sign(&tx.response_payload());
            tx.endorsements.push(Endorsement {
                endorser: peer.identity().clone(),
                signature: sig,
            });
        }
        assert_eq!(tx.endorsing_orgs(), ["org1", "org2"]);
    }

    #[test]
    fn to_bytes_includes_endorsements() {
        let plain = sample_tx(false);
        let mut endorsed = plain.clone();
        let peer = KeyPair::derive(Identity::new("peer0", "org1"));
        endorsed.endorsements.push(Endorsement {
            endorser: peer.identity().clone(),
            signature: peer.sign(&endorsed.response_payload()),
        });
        assert_ne!(plain.to_bytes(), endorsed.to_bytes());
    }

    #[test]
    fn short_id_is_eight_hex_chars() {
        assert_eq!(sample_tx(false).id.short().len(), 8);
    }
}
