//! Ledger substrate: versioned world state, read-write sets, blocks and
//! MVCC validation — the parts of Hyperledger Fabric's peer ledger that
//! the FabricCRDT paper builds on.
//!
//! - [`version`]: Fabric's `(block number, transaction number)` value
//!   versions.
//! - [`worldstate`]: the versioned key-value world state database
//!   (CouchDB substitute; see DESIGN.md §1).
//! - [`rwset`]: read sets (key + version read) and write sets (key +
//!   value + CRDT flag), exactly the §3 transaction result model.
//! - [`transaction`]: endorsed transactions with content-derived ids.
//! - [`block`]: blocks with hash chaining and per-transaction validation
//!   codes.
//! - [`chain`]: the append-only blockchain with integrity verification.
//! - [`mvcc`]: the multi-version concurrency control validator of §3,
//!   including the worked T1…T5 example as a test.
//! - [`store`]: pluggable durable storage — a [`store::LedgerStore`]
//!   trait with in-memory and append-only-file backends, snapshots and
//!   compaction (Fabric's block file store).
//!
//! # Examples
//!
//! ```
//! use fabriccrdt_ledger::worldstate::WorldState;
//! use fabriccrdt_ledger::version::Height;
//!
//! let mut ws = WorldState::new();
//! ws.put("K1".into(), b"V1".to_vec(), Height::new(1, 0));
//! assert_eq!(ws.value("K1"), Some(&b"V1"[..]));
//! assert_eq!(ws.version("K1"), Some(Height::new(1, 0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod chain;
pub mod codec;
pub mod history;
pub mod mvcc;
pub mod rwset;
pub mod store;
pub mod transaction;
pub mod version;
pub mod worldstate;

pub use block::{Block, BlockHeader, ValidationCode};
pub use chain::Blockchain;
pub use rwset::{ReadSet, ReadWriteSet, WriteSet};
pub use transaction::{Endorsement, Transaction, TxId};
pub use version::Height;
pub use worldstate::WorldState;
