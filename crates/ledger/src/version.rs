//! Value versions.
//!
//! Fabric versions every world-state value with the *height* of the
//! transaction that committed it: the pair `(block number, transaction
//! number within the block)`. MVCC validation (§3 of the paper) compares
//! the version recorded in a transaction's read set against the current
//! version in the world state.

use std::fmt;

/// A committed transaction's position: `(block number, tx number)`.
///
/// # Examples
///
/// ```
/// use fabriccrdt_ledger::version::Height;
///
/// let earlier = Height::new(4, 7);
/// let later = Height::new(5, 0);
/// assert!(earlier < later);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Height {
    /// Block number (the genesis block is 0).
    pub block_num: u64,
    /// Transaction index within the block.
    pub tx_num: u64,
}

impl Height {
    /// Creates a height.
    pub fn new(block_num: u64, tx_num: u64) -> Self {
        Height { block_num, tx_num }
    }

    /// The height used for values seeded at genesis.
    pub fn genesis() -> Self {
        Height::new(0, 0)
    }

    /// Canonical 16-byte encoding, used in transaction hashing.
    pub fn to_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.block_num.to_be_bytes());
        out[8..].copy_from_slice(&self.tx_num.to_be_bytes());
        out
    }
}

impl fmt::Display for Height {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.block_num, self.tx_num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_block_then_tx() {
        assert!(Height::new(1, 9) < Height::new(2, 0));
        assert!(Height::new(2, 0) < Height::new(2, 1));
        assert_eq!(Height::new(3, 3), Height::new(3, 3));
    }

    #[test]
    fn genesis_is_minimal() {
        assert!(Height::genesis() <= Height::new(0, 1));
        assert!(Height::genesis() <= Height::new(1, 0));
    }

    #[test]
    fn byte_encoding_is_order_preserving() {
        let a = Height::new(1, 2);
        let b = Height::new(1, 3);
        let c = Height::new(2, 0);
        assert!(a.to_bytes() < b.to_bytes());
        assert!(b.to_bytes() < c.to_bytes());
    }

    #[test]
    fn display() {
        assert_eq!(Height::new(5, 12).to_string(), "5:12");
    }
}
