//! Binary encoding of ledger structures.
//!
//! Fabric peers persist blocks to append-only block files; this module
//! provides the equivalent: a versioned, self-describing binary codec
//! for blocks and whole chains, so simulated ledgers can be exported,
//! stored and replayed (see the `late_joining_replica_catches_up`
//! convergence test for why replay matters). Decoding is total — any
//! byte string yields `Ok` or a structured error, never a panic (fuzzed
//! by proptest in `tests/properties.rs`).

use std::error::Error;
use std::fmt;

use fabriccrdt_crypto::{Identity, Signature};

use crate::block::{Block, BlockHeader, ValidationCode};
use crate::chain::Blockchain;
use crate::rwset::ReadWriteSet;
use crate::transaction::{Endorsement, Transaction, TxId};
use crate::version::Height;

/// Codec format version; bump on layout changes.
const FORMAT_VERSION: u8 = 1;

/// Chain-layout format version. Bumped to 2 when chains gained a
/// resume anchor (`base_number` + `base_hash`) so snapshot-restored
/// peers can export their retained suffix; block and state layouts are
/// unchanged and keep [`FORMAT_VERSION`].
const CHAIN_FORMAT_VERSION: u8 = 2;

/// Decoding error with byte-offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    message: &'static str,
    /// Byte offset at which decoding failed.
    pub offset: usize,
}

impl DecodeError {
    /// Creates a decode error at the given byte offset. Public so
    /// codecs layered on top of ledger byte strings (e.g. snapshot
    /// frontier tables) can report failures in the same shape.
    pub fn new(message: &'static str, offset: usize) -> Self {
        DecodeError { message, offset }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl Error for DecodeError {}

// ---------------------------------------------------------------- writer

pub(crate) struct Writer {
    pub(crate) buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub(crate) fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    pub(crate) fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    pub(crate) fn digest(&mut self, v: &[u8; 32]) {
        self.buf.extend_from_slice(v);
    }
}

// ---------------------------------------------------------------- reader

pub(crate) struct Reader<'a> {
    data: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    pub(crate) fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self
            .data
            .get(self.pos)
            .ok_or(DecodeError::new("unexpected end of input", self.pos))?;
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn u64(&mut self) -> Result<u64, DecodeError> {
        let end = self.pos + 8;
        let slice = self
            .data
            .get(self.pos..end)
            .ok_or(DecodeError::new("unexpected end of input", self.pos))?;
        self.pos = end;
        Ok(u64::from_be_bytes(slice.try_into().expect("8 bytes")))
    }

    /// Length read for a collection; bounded by remaining input so a
    /// corrupt length cannot trigger huge allocations.
    pub(crate) fn len(&mut self, min_item_size: usize) -> Result<usize, DecodeError> {
        let at = self.pos;
        let n = self.u64()? as usize;
        let remaining = self.data.len() - self.pos;
        if min_item_size > 0 && n > remaining / min_item_size + 1 {
            return Err(DecodeError::new("implausible collection length", at));
        }
        Ok(n)
    }

    pub(crate) fn bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let at = self.pos;
        let n = self.u64()? as usize;
        let end = self.pos + n;
        let slice = self
            .data
            .get(self.pos..end)
            .ok_or(DecodeError::new("byte string exceeds input", at))?;
        self.pos = end;
        Ok(slice.to_vec())
    }

    pub(crate) fn str(&mut self) -> Result<String, DecodeError> {
        let at = self.pos;
        String::from_utf8(self.bytes()?).map_err(|_| DecodeError::new("invalid UTF-8", at))
    }

    pub(crate) fn digest(&mut self) -> Result<[u8; 32], DecodeError> {
        let end = self.pos + 32;
        let slice = self
            .data
            .get(self.pos..end)
            .ok_or(DecodeError::new("unexpected end of input", self.pos))?;
        self.pos = end;
        Ok(slice.try_into().expect("32 bytes"))
    }

    pub(crate) fn finish(&self) -> Result<(), DecodeError> {
        if self.pos != self.data.len() {
            return Err(DecodeError::new("trailing bytes after value", self.pos));
        }
        Ok(())
    }
}

// ------------------------------------------------------------- encoding

fn write_identity(w: &mut Writer, identity: &Identity) {
    w.str(&identity.name);
    w.str(&identity.org);
}

fn write_rwset(w: &mut Writer, rwset: &ReadWriteSet) {
    w.u64(rwset.reads.len() as u64);
    for (key, entry) in rwset.reads.iter() {
        w.str(key);
        match entry.version {
            Some(h) => {
                w.u8(1);
                w.u64(h.block_num);
                w.u64(h.tx_num);
            }
            None => w.u8(0),
        }
    }
    w.u64(rwset.writes.len() as u64);
    for (key, entry) in rwset.writes.iter() {
        w.str(key);
        w.u8(u8::from(entry.is_crdt) | (u8::from(entry.is_delete) << 1));
        w.bytes(&entry.value);
    }
}

fn write_transaction(w: &mut Writer, tx: &Transaction) {
    w.digest(&tx.id.0);
    write_identity(w, &tx.client);
    w.str(&tx.chaincode);
    write_rwset(w, &tx.rwset);
    w.u64(tx.endorsements.len() as u64);
    for e in &tx.endorsements {
        write_identity(w, &e.endorser);
        w.digest(&e.signature.0);
    }
}

fn code_to_byte(code: ValidationCode) -> u8 {
    match code {
        ValidationCode::Valid => 0,
        ValidationCode::MvccConflict => 1,
        ValidationCode::EndorsementPolicyFailure => 2,
        ValidationCode::DuplicateTxId => 3,
        ValidationCode::ValidMerged => 4,
        ValidationCode::EarlyAborted => 5,
        ValidationCode::TamperedBlock => 6,
    }
}

fn code_from_byte(b: u8, offset: usize) -> Result<ValidationCode, DecodeError> {
    Ok(match b {
        0 => ValidationCode::Valid,
        1 => ValidationCode::MvccConflict,
        2 => ValidationCode::EndorsementPolicyFailure,
        3 => ValidationCode::DuplicateTxId,
        4 => ValidationCode::ValidMerged,
        5 => ValidationCode::EarlyAborted,
        6 => ValidationCode::TamperedBlock,
        _ => return Err(DecodeError::new("unknown validation code", offset)),
    })
}

/// Encodes a block.
pub fn encode_block(block: &Block) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(FORMAT_VERSION);
    w.u64(block.header.number);
    w.digest(&block.header.previous_hash);
    w.digest(&block.header.data_hash);
    w.u64(block.transactions.len() as u64);
    for tx in &block.transactions {
        write_transaction(&mut w, tx);
    }
    w.u64(block.validation_codes.len() as u64);
    for &code in &block.validation_codes {
        w.u8(code_to_byte(code));
    }
    w.buf
}

/// Encodes a chain: its resume anchor followed by the in-memory blocks,
/// oldest first (the anchor is the genesis anchor for a full chain).
pub fn encode_chain(chain: &Blockchain) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(CHAIN_FORMAT_VERSION);
    w.u64(chain.base_number());
    w.digest(&chain.anchor_hash());
    w.u64(chain.height() - chain.base_number());
    for block in chain.iter() {
        w.bytes(&encode_block(block));
    }
    w.buf
}

// ------------------------------------------------------------- decoding

fn read_identity(r: &mut Reader<'_>) -> Result<Identity, DecodeError> {
    let name = r.str()?;
    let org = r.str()?;
    Ok(Identity::new(name, org))
}

fn read_rwset(r: &mut Reader<'_>) -> Result<ReadWriteSet, DecodeError> {
    let mut rwset = ReadWriteSet::new();
    let reads = r.len(10)?;
    for _ in 0..reads {
        let key = r.str()?;
        let version = match r.u8()? {
            0 => None,
            1 => Some(Height::new(r.u64()?, r.u64()?)),
            _ => return Err(DecodeError::new("invalid version marker", r.pos - 1)),
        };
        rwset.reads.record(key, version);
    }
    let writes = r.len(17)?;
    for _ in 0..writes {
        let key = r.str()?;
        let flags = r.u8()?;
        if flags > 3 {
            return Err(DecodeError::new("invalid write flags", r.pos - 1));
        }
        let value = r.bytes()?;
        let entry_is_crdt = flags & 1 != 0;
        let entry_is_delete = flags & 2 != 0;
        if entry_is_delete {
            rwset.writes.delete(key);
        } else if entry_is_crdt {
            rwset.writes.put_crdt(key, value);
        } else {
            rwset.writes.put(key, value);
        }
    }
    Ok(rwset)
}

fn read_transaction(r: &mut Reader<'_>) -> Result<Transaction, DecodeError> {
    let id = TxId(r.digest()?);
    let client = read_identity(r)?;
    let chaincode = r.str()?;
    let rwset = read_rwset(r)?;
    let endorsement_count = r.len(40)?;
    let mut endorsements = Vec::with_capacity(endorsement_count);
    for _ in 0..endorsement_count {
        let endorser = read_identity(r)?;
        let signature = Signature(r.digest()?);
        endorsements.push(Endorsement {
            endorser,
            signature,
        });
    }
    Ok(Transaction {
        id,
        client,
        chaincode,
        rwset,
        endorsements,
    })
}

/// Decodes a block.
///
/// # Errors
///
/// Returns a [`DecodeError`] for truncated, malformed or
/// wrong-version input.
pub fn decode_block(data: &[u8]) -> Result<Block, DecodeError> {
    let mut r = Reader::new(data);
    let block = decode_block_inner(&mut r)?;
    r.finish()?;
    Ok(block)
}

fn decode_block_inner(r: &mut Reader<'_>) -> Result<Block, DecodeError> {
    let version = r.u8()?;
    if version != FORMAT_VERSION {
        return Err(DecodeError::new("unsupported format version", r.pos - 1));
    }
    let number = r.u64()?;
    let previous_hash = r.digest()?;
    let data_hash = r.digest()?;
    let tx_count = r.len(60)?;
    let mut transactions = Vec::with_capacity(tx_count);
    for _ in 0..tx_count {
        transactions.push(read_transaction(r)?);
    }
    let code_count = r.len(1)?;
    let mut validation_codes = Vec::with_capacity(code_count);
    for _ in 0..code_count {
        let at = r.pos;
        validation_codes.push(code_from_byte(r.u8()?, at)?);
    }
    Ok(Block {
        header: BlockHeader {
            number,
            previous_hash,
            data_hash,
        },
        transactions,
        validation_codes,
    })
}

/// Encodes a world-state snapshot (keys in sorted order).
pub fn encode_state(state: &crate::worldstate::WorldState) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(FORMAT_VERSION);
    w.u64(state.len() as u64);
    for (key, entry) in state.iter() {
        w.str(key);
        w.u64(entry.version.block_num);
        w.u64(entry.version.tx_num);
        w.bytes(&entry.value);
    }
    w.buf
}

/// Decodes a world-state snapshot.
///
/// # Errors
///
/// Returns a [`DecodeError`] for truncated, malformed or
/// wrong-version input.
pub fn decode_state(data: &[u8]) -> Result<crate::worldstate::WorldState, DecodeError> {
    let mut r = Reader::new(data);
    let version = r.u8()?;
    if version != FORMAT_VERSION {
        return Err(DecodeError::new("unsupported format version", r.pos - 1));
    }
    let count = r.len(25)?;
    let mut state = crate::worldstate::WorldState::new();
    for _ in 0..count {
        let key = r.str()?;
        let height = Height::new(r.u64()?, r.u64()?);
        let value = r.bytes()?;
        state.put(key, value, height);
    }
    r.finish()?;
    Ok(state)
}

/// Decodes a chain and verifies its integrity (hash links, data
/// hashes, numbering).
///
/// # Errors
///
/// Returns a [`DecodeError`] for malformed input; integrity violations
/// surface as `"chain integrity violation"`.
pub fn decode_chain(data: &[u8]) -> Result<Blockchain, DecodeError> {
    let mut r = Reader::new(data);
    let version = r.u8()?;
    if version != CHAIN_FORMAT_VERSION {
        return Err(DecodeError::new("unsupported format version", r.pos - 1));
    }
    let base_number = r.u64()?;
    let base_hash = r.digest()?;
    if base_number == 0 && base_hash != Blockchain::GENESIS_PREVIOUS_HASH {
        return Err(DecodeError::new(
            "non-genesis anchor at height 0",
            r.pos - 32,
        ));
    }
    let count = r.len(80)?;
    let mut chain = Blockchain::resume(base_number, base_hash);
    for _ in 0..count {
        let at = r.pos;
        let block_bytes = r.bytes()?;
        let block = decode_block(&block_bytes)?;
        chain
            .append(block)
            .map_err(|_| DecodeError::new("chain integrity violation", at))?;
    }
    r.finish()?;
    Ok(chain)
}

/// Encodes a history database (keys in sorted order).
pub fn encode_history(history: &crate::history::HistoryDb) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(FORMAT_VERSION);
    w.u64(history.keys() as u64);
    for (key, entries) in history.iter() {
        w.str(key);
        w.u64(entries.len() as u64);
        for entry in entries {
            w.u64(entry.height.block_num);
            w.u64(entry.height.tx_num);
            match &entry.value {
                Some(value) => {
                    w.u8(1);
                    w.bytes(value);
                }
                None => w.u8(0),
            }
        }
    }
    w.buf
}

/// Decodes a history database.
///
/// # Errors
///
/// Returns a [`DecodeError`] for truncated, malformed or
/// wrong-version input.
pub fn decode_history(data: &[u8]) -> Result<crate::history::HistoryDb, DecodeError> {
    let mut r = Reader::new(data);
    let version = r.u8()?;
    if version != FORMAT_VERSION {
        return Err(DecodeError::new("unsupported format version", r.pos - 1));
    }
    let key_count = r.len(25)?;
    let mut history = crate::history::HistoryDb::new();
    for _ in 0..key_count {
        let key = r.str()?;
        let entry_count = r.len(17)?;
        let mut entries = Vec::with_capacity(entry_count);
        for _ in 0..entry_count {
            let height = Height::new(r.u64()?, r.u64()?);
            let value = match r.u8()? {
                0 => None,
                1 => Some(r.bytes()?),
                _ => return Err(DecodeError::new("invalid value marker", r.pos - 1)),
            };
            entries.push(crate::history::HistoryEntry { height, value });
        }
        if entries.is_empty() {
            return Err(DecodeError::new("history key without entries", r.pos));
        }
        history.insert_entries(key, entries);
    }
    r.finish()?;
    Ok(history)
}

/// Encodes a set of transaction ids (callers pass them sorted so the
/// encoding is deterministic).
pub fn encode_txids(ids: &[TxId]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(FORMAT_VERSION);
    w.u64(ids.len() as u64);
    for id in ids {
        w.digest(&id.0);
    }
    w.buf
}

/// Decodes a set of transaction ids.
///
/// # Errors
///
/// Returns a [`DecodeError`] for truncated, malformed or
/// wrong-version input.
pub fn decode_txids(data: &[u8]) -> Result<Vec<TxId>, DecodeError> {
    let mut r = Reader::new(data);
    let version = r.u8()?;
    if version != FORMAT_VERSION {
        return Err(DecodeError::new("unsupported format version", r.pos - 1));
    }
    let count = r.len(32)?;
    let mut ids = Vec::with_capacity(count);
    for _ in 0..count {
        ids.push(TxId(r.digest()?));
    }
    r.finish()?;
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tx(n: u64) -> Transaction {
        let client = Identity::new("client1", "org1");
        let mut rwset = ReadWriteSet::new();
        rwset.reads.record("seen", Some(Height::new(2, 3)));
        rwset.reads.record("ghost", None);
        rwset.writes.put("plain", vec![n as u8; 3]);
        rwset.writes.put_crdt("doc", br#"{"a":"1"}"#.to_vec());
        rwset.writes.delete("gone");
        Transaction {
            id: TxId::derive(&client, n, "cc"),
            client,
            chaincode: "cc".into(),
            rwset,
            endorsements: vec![Endorsement {
                endorser: Identity::new("peer0", "org2"),
                signature: Signature([7; 32]),
            }],
        }
    }

    fn sample_block(n: u64, with_codes: bool) -> Block {
        let mut block = Block::assemble(n, [n as u8; 32], vec![sample_tx(1), sample_tx(2)]);
        if with_codes {
            block.validation_codes = vec![ValidationCode::Valid, ValidationCode::MvccConflict];
        }
        block
    }

    #[test]
    fn block_roundtrip() {
        for with_codes in [false, true] {
            let block = sample_block(5, with_codes);
            let decoded = decode_block(&encode_block(&block)).unwrap();
            assert_eq!(decoded, block);
        }
    }

    #[test]
    fn all_validation_codes_roundtrip() {
        for code in [
            ValidationCode::Valid,
            ValidationCode::MvccConflict,
            ValidationCode::EndorsementPolicyFailure,
            ValidationCode::DuplicateTxId,
            ValidationCode::ValidMerged,
            ValidationCode::EarlyAborted,
            ValidationCode::TamperedBlock,
        ] {
            assert_eq!(code_from_byte(code_to_byte(code), 0).unwrap(), code);
        }
        assert!(code_from_byte(99, 0).is_err());
    }

    #[test]
    fn chain_roundtrip() {
        let mut chain = Blockchain::new();
        chain.append(Block::genesis()).unwrap();
        let b1 = Block::assemble(1, chain.tip_hash(), vec![sample_tx(1)]);
        chain.append(b1).unwrap();
        let b2 = Block::assemble(2, chain.tip_hash(), vec![sample_tx(2)]);
        chain.append(b2).unwrap();

        let decoded = decode_chain(&encode_chain(&chain)).unwrap();
        assert_eq!(decoded.height(), 3);
        assert_eq!(decoded.tip_hash(), chain.tip_hash());
        decoded.verify_integrity().unwrap();
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = encode_block(&sample_block(1, true));
        for cut in [0, 1, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_block(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_block(&sample_block(1, false));
        bytes.push(0);
        let err = decode_block(&bytes).unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = encode_block(&sample_block(1, false));
        bytes[0] = 99;
        assert!(decode_block(&bytes).is_err());
    }

    #[test]
    fn corrupt_length_rejected_without_huge_alloc() {
        let mut bytes = encode_block(&sample_block(1, false));
        // Overwrite the transaction count with a huge value.
        let count_offset = 1 + 8 + 32 + 32;
        bytes[count_offset..count_offset + 8].copy_from_slice(&u64::MAX.to_be_bytes());
        assert!(decode_block(&bytes).is_err());
    }

    #[test]
    fn state_snapshot_roundtrip() {
        let mut state = crate::worldstate::WorldState::new();
        state.put("a".into(), b"1".to_vec(), Height::new(1, 0));
        state.put("z".into(), vec![0xff; 100], Height::new(7, 12));
        state.put("empty".into(), Vec::new(), Height::genesis());
        let decoded = decode_state(&encode_state(&state)).unwrap();
        assert_eq!(decoded, state);
    }

    #[test]
    fn empty_state_roundtrip() {
        let state = crate::worldstate::WorldState::new();
        assert_eq!(decode_state(&encode_state(&state)).unwrap(), state);
    }

    #[test]
    fn state_decode_is_total_on_truncation() {
        let mut state = crate::worldstate::WorldState::new();
        state.put("key".into(), b"value".to_vec(), Height::new(1, 0));
        let bytes = encode_state(&state);
        for cut in 0..bytes.len() {
            assert!(decode_state(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn tampered_chain_fails_integrity() {
        let mut chain = Blockchain::new();
        chain.append(Block::genesis()).unwrap();
        chain
            .append(Block::assemble(1, chain.tip_hash(), vec![sample_tx(1)]))
            .unwrap();
        let mut bytes = encode_chain(&chain);
        // Flip a byte inside the second block's payload region.
        let len = bytes.len();
        bytes[len - 40] ^= 0xff;
        assert!(decode_chain(&bytes).is_err());
    }
}
