//! Read-write sets — the result of simulating a transaction proposal.
//!
//! Section 3 of the paper: *"The read set includes a list of keys and the
//! version number of the key's value that a peer retrieved from the ledger
//! during the execution of the chaincode. The write set contains the
//! key-value pairs that will be committed to the ledger at the end."*
//!
//! FabricCRDT extends write-set entries with a CRDT flag (§4.3: peers
//! "flag the key-value pairs in the resulting transaction's write-set as
//! 'CRDT key-values'"), set by the chaincode shim's `put_crdt`.

use std::collections::BTreeMap;

use crate::version::Height;

/// One read-set entry: the version observed at simulation time (`None`
/// when the key did not exist).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadEntry {
    /// Version observed during endorsement, or `None` for a missing key.
    pub version: Option<Height>,
}

/// The keys read during simulation, with their observed versions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReadSet {
    entries: BTreeMap<String, ReadEntry>,
}

impl ReadSet {
    /// An empty read set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `key` was read at `version`. The first read of a key
    /// wins (Fabric records the version at first access).
    pub fn record(&mut self, key: impl Into<String>, version: Option<Height>) {
        self.entries
            .entry(key.into())
            .or_insert(ReadEntry { version });
    }

    /// Iterates `(key, observed version)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &ReadEntry)> {
        self.entries.iter()
    }

    /// The observed version for `key`, if the key was read.
    pub fn get(&self, key: &str) -> Option<ReadEntry> {
        self.entries.get(key).copied()
    }

    /// Number of keys read.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was read (a pure write transaction, which can
    /// never MVCC-conflict — §3).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One write-set entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteEntry {
    /// The value to commit (canonical JSON bytes for CRDT values).
    pub value: Vec<u8>,
    /// FabricCRDT flag: this value is a CRDT and skips MVCC validation
    /// (Algorithm 1, line 6).
    pub is_crdt: bool,
    /// Fabric delete marker.
    pub is_delete: bool,
}

/// The key-value pairs a transaction will commit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteSet {
    entries: BTreeMap<String, WriteEntry>,
}

impl WriteSet {
    /// An empty write set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a plain (non-CRDT) write. Later writes to the same key
    /// overwrite earlier ones, as in Fabric's simulator.
    pub fn put(&mut self, key: impl Into<String>, value: Vec<u8>) {
        self.entries.insert(
            key.into(),
            WriteEntry {
                value,
                is_crdt: false,
                is_delete: false,
            },
        );
    }

    /// Records a CRDT-flagged write (the shim's `put_crdt`, §5.2).
    pub fn put_crdt(&mut self, key: impl Into<String>, value: Vec<u8>) {
        self.entries.insert(
            key.into(),
            WriteEntry {
                value,
                is_crdt: true,
                is_delete: false,
            },
        );
    }

    /// Records a delete.
    pub fn delete(&mut self, key: impl Into<String>) {
        self.entries.insert(
            key.into(),
            WriteEntry {
                value: Vec::new(),
                is_crdt: false,
                is_delete: true,
            },
        );
    }

    /// Replaces the value of an existing entry, preserving its flags —
    /// Algorithm 1 line 22 (`UpdateWriteSet`) rewrites CRDT values with
    /// the merged result.
    ///
    /// Returns `false` if the key has no entry.
    pub fn update_value(&mut self, key: &str, value: Vec<u8>) -> bool {
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.value = value;
                true
            }
            None => false,
        }
    }

    /// Iterates `(key, entry)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &WriteEntry)> {
        self.entries.iter()
    }

    /// The entry for `key`.
    pub fn get(&self, key: &str) -> Option<&WriteEntry> {
        self.entries.get(key)
    }

    /// Number of keys written.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is written.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether any entry carries the CRDT flag.
    pub fn has_crdt_writes(&self) -> bool {
        self.entries.values().any(|e| e.is_crdt)
    }
}

/// A transaction's simulation result: read set + write set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReadWriteSet {
    /// Keys read with observed versions.
    pub reads: ReadSet,
    /// Keys written with values and flags.
    pub writes: WriteSet,
}

impl ReadWriteSet {
    /// An empty read-write set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Canonical byte encoding, input to transaction ids and endorsement
    /// signatures. Length-prefixed fields; unambiguous.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let put_str = |out: &mut Vec<u8>, s: &str| {
            out.extend_from_slice(&(s.len() as u64).to_be_bytes());
            out.extend_from_slice(s.as_bytes());
        };
        out.extend_from_slice(&(self.reads.len() as u64).to_be_bytes());
        for (key, entry) in self.reads.iter() {
            put_str(&mut out, key);
            match entry.version {
                Some(height) => {
                    out.push(1);
                    out.extend_from_slice(&height.to_bytes());
                }
                None => out.push(0),
            }
        }
        out.extend_from_slice(&(self.writes.len() as u64).to_be_bytes());
        for (key, entry) in self.writes.iter() {
            put_str(&mut out, key);
            out.push(u8::from(entry.is_crdt) | (u8::from(entry.is_delete) << 1));
            out.extend_from_slice(&(entry.value.len() as u64).to_be_bytes());
            out.extend_from_slice(&entry.value);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_set_records_first_version() {
        let mut rs = ReadSet::new();
        rs.record("k", Some(Height::new(1, 0)));
        rs.record("k", Some(Height::new(2, 0))); // later read ignored
        assert_eq!(rs.get("k").unwrap().version, Some(Height::new(1, 0)));
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn read_of_missing_key_recorded_as_none() {
        let mut rs = ReadSet::new();
        rs.record("ghost", None);
        assert_eq!(rs.get("ghost").unwrap().version, None);
        assert!(!rs.is_empty());
    }

    #[test]
    fn write_set_last_write_wins() {
        let mut ws = WriteSet::new();
        ws.put("k", b"v1".to_vec());
        ws.put_crdt("k", b"v2".to_vec());
        let entry = ws.get("k").unwrap();
        assert_eq!(entry.value, b"v2");
        assert!(entry.is_crdt);
        assert!(ws.has_crdt_writes());
    }

    #[test]
    fn delete_entry() {
        let mut ws = WriteSet::new();
        ws.delete("k");
        let entry = ws.get("k").unwrap();
        assert!(entry.is_delete);
        assert!(!ws.has_crdt_writes());
    }

    #[test]
    fn update_value_preserves_flags() {
        let mut ws = WriteSet::new();
        ws.put_crdt("k", b"old".to_vec());
        assert!(ws.update_value("k", b"merged".to_vec()));
        let entry = ws.get("k").unwrap();
        assert_eq!(entry.value, b"merged");
        assert!(entry.is_crdt);
        assert!(!ws.update_value("missing", b"x".to_vec()));
    }

    #[test]
    fn canonical_bytes_distinguish_content() {
        let mut a = ReadWriteSet::new();
        a.reads.record("k", Some(Height::new(1, 0)));
        a.writes.put("k", b"v".to_vec());

        let mut b = ReadWriteSet::new();
        b.reads.record("k", Some(Height::new(1, 1)));
        b.writes.put("k", b"v".to_vec());

        let mut c = ReadWriteSet::new();
        c.reads.record("k", Some(Height::new(1, 0)));
        c.writes.put_crdt("k", b"v".to_vec());

        assert_ne!(a.to_bytes(), b.to_bytes());
        assert_ne!(a.to_bytes(), c.to_bytes());
        assert_eq!(a.to_bytes(), a.clone().to_bytes());
    }

    #[test]
    fn canonical_bytes_resist_concatenation_ambiguity() {
        // ("ab" -> "c") must differ from ("a" -> "bc").
        let mut a = ReadWriteSet::new();
        a.writes.put("ab", b"c".to_vec());
        let mut b = ReadWriteSet::new();
        b.writes.put("a", b"bc".to_vec());
        assert_ne!(a.to_bytes(), b.to_bytes());
    }
}
