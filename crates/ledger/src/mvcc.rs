//! Multi-version concurrency control validation (§3 of the paper).
//!
//! A committing peer walks the block's transactions *sequentially*,
//! comparing each read-set entry's version against the current world
//! state. A transaction is valid iff every read version matches; valid
//! transactions' write sets commit immediately, so later transactions in
//! the same block see the bumped versions — exactly the behaviour that
//! invalidates T2 and T3 in the paper's worked example.
//!
//! The same routine also serves the FabricCRDT pathway: with
//! `crdt_aware = true`, *CRDT transactions* — those whose write set
//! carries any CRDT-flagged pair — skip MVCC read validation entirely
//! (paper §4.3: "CRDT transactions only go through the endorsement
//! validation check"; Algorithm 1 line 15 runs MVCC "on non-CRDT
//! transactions"). Committed CRDT transactions are recorded as
//! [`ValidationCode::ValidMerged`]. This transaction-level skip is what
//! makes the §6 double-spend caveat real: even a non-CRDT read inside a
//! CRDT transaction goes unvalidated.

use crate::block::{Block, ValidationCode};
use crate::transaction::Transaction;
use crate::version::Height;
use crate::worldstate::WorldState;

/// Work counters from a commit pass, consumed by the simulator's cost
/// model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitStats {
    /// Read-set version comparisons performed.
    pub reads_checked: u64,
    /// Write-set entries applied to the world state.
    pub writes_applied: u64,
    /// Transactions committed successfully.
    pub successes: u64,
}

/// Validates a block's transactions and commits the valid ones,
/// filling `block.validation_codes`.
///
/// `pre_decided` carries codes already decided by earlier pipeline stages
/// (endorsement-policy failures, duplicate ids); pass an empty slice when
/// nothing is pre-decided. Pre-decided transactions are recorded as-is
/// and never touch the world state.
///
/// With `crdt_aware = false` this is vanilla Fabric's validator; with
/// `crdt_aware = true` it is the MVCC stage of FabricCRDT's Algorithm 1
/// (CRDT-flagged pairs skip the read check).
///
/// # Panics
///
/// Panics if `pre_decided` is non-empty and its length differs from the
/// number of transactions in the block.
pub fn validate_and_commit(
    block: &mut Block,
    state: &mut WorldState,
    pre_decided: &[Option<ValidationCode>],
    crdt_aware: bool,
) -> CommitStats {
    assert!(
        pre_decided.is_empty() || pre_decided.len() == block.transactions.len(),
        "pre_decided length must match transaction count"
    );
    let mut stats = CommitStats::default();
    let mut codes = Vec::with_capacity(block.transactions.len());

    for (tx_num, tx) in block.transactions.iter().enumerate() {
        if let Some(Some(code)) = pre_decided.get(tx_num) {
            codes.push(*code);
            continue;
        }

        // CRDT transactions bypass MVCC read validation wholesale
        // (§4.3 / Algorithm 1 line 15: MVCC runs on *non-CRDT*
        // transactions only). The committer still walks the read set and
        // fetches each key's current version from the state database —
        // the lookup cost is paid either way (this is what makes
        // FabricCRDT "affected by both the number of reads and writes",
        // §7.4) — it just never fails a CRDT transaction on a mismatch.
        let is_crdt_tx = crdt_aware && tx.rwset.writes.has_crdt_writes();

        // Sequential read-set validation against the *current* state,
        // which already includes writes of earlier valid transactions in
        // this block.
        let mut valid = true;
        for (key, entry) in tx.rwset.reads.iter() {
            stats.reads_checked += 1;
            let current = state.version(key);
            if !is_crdt_tx && current != entry.version {
                valid = false;
                break;
            }
        }

        if !valid {
            codes.push(ValidationCode::MvccConflict);
            continue;
        }

        // Commit the write set at this transaction's height.
        let height = Height::new(block.header.number, tx_num as u64);
        let mut wrote_crdt = false;
        for (key, entry) in tx.rwset.writes.iter() {
            stats.writes_applied += 1;
            if entry.is_delete {
                state.delete(key);
            } else {
                state.put(key.clone(), entry.value.clone(), height);
            }
            wrote_crdt |= entry.is_crdt;
        }
        stats.successes += 1;
        codes.push(if crdt_aware && wrote_crdt {
            ValidationCode::ValidMerged
        } else {
            ValidationCode::Valid
        });
    }

    block.validation_codes = codes;
    stats
}

/// World-state access for a conflict chain's validator, by shared
/// reference: implementations use interior mutability (per-shard locks)
/// so disjoint chains on different threads can commit concurrently.
pub trait ChainState {
    /// Current version of `key`, if present.
    fn version(&self, key: &str) -> Option<Height>;
    /// Stores `key = value` at `version`.
    fn put(&self, key: String, value: Vec<u8>, version: Height);
    /// Removes `key`.
    fn delete(&self, key: &str);
}

/// Outcome of validating one conflict chain: per-transaction codes
/// (tagged with the block-global transaction index) plus work counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChainCommit {
    /// `(block index, code)` for every transaction in the chain, in
    /// chain (= block) order.
    pub codes: Vec<(usize, ValidationCode)>,
    /// Work counters for this chain.
    pub stats: CommitStats,
}

/// [`validate_and_commit`] restricted to one conflict chain.
///
/// `chain` holds block-global transaction indices in ascending block
/// order; the scheduler guarantees every key any of them reads or
/// writes is touched *only* by transactions of this chain, so the
/// per-key version sequence this chain observes through `state` is
/// exactly the one the sequential pass would produce. Write heights use
/// the block-global index (`Height::new(block_number, i)`), read checks
/// count-then-break on first mismatch, and CRDT transactions skip the
/// comparison but pay the lookup — instruction-for-instruction the
/// sequential loop above.
///
/// `value_for(i, key)` supplies an override for the written bytes
/// (the converged CRDT value of Algorithm 1's second pass, which in the
/// sequential path has already been rewritten into the transaction by
/// the time MVCC runs); `None` commits the transaction's own bytes.
pub fn validate_chain<S: ChainState>(
    block_number: u64,
    transactions: &[Transaction],
    chain: &[usize],
    state: &S,
    crdt_aware: bool,
    mut value_for: impl FnMut(usize, &str) -> Option<Vec<u8>>,
) -> ChainCommit {
    let mut commit = ChainCommit::default();
    for &tx_num in chain {
        let tx = &transactions[tx_num];
        let is_crdt_tx = crdt_aware && tx.rwset.writes.has_crdt_writes();

        let mut valid = true;
        for (key, entry) in tx.rwset.reads.iter() {
            commit.stats.reads_checked += 1;
            let current = state.version(key);
            if !is_crdt_tx && current != entry.version {
                valid = false;
                break;
            }
        }

        if !valid {
            commit.codes.push((tx_num, ValidationCode::MvccConflict));
            continue;
        }

        let height = Height::new(block_number, tx_num as u64);
        let mut wrote_crdt = false;
        for (key, entry) in tx.rwset.writes.iter() {
            commit.stats.writes_applied += 1;
            if entry.is_delete {
                state.delete(key);
            } else {
                let value = value_for(tx_num, key).unwrap_or_else(|| entry.value.clone());
                state.put(key.clone(), value, height);
            }
            wrote_crdt |= entry.is_crdt;
        }
        commit.stats.successes += 1;
        commit.codes.push((
            tx_num,
            if crdt_aware && wrote_crdt {
                ValidationCode::ValidMerged
            } else {
                ValidationCode::Valid
            },
        ));
    }
    commit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rwset::ReadWriteSet;
    use crate::transaction::{Transaction, TxId};
    use fabriccrdt_crypto::Identity;

    fn tx(n: u64, rwset: ReadWriteSet) -> Transaction {
        let client = Identity::new("client", "org1");
        Transaction {
            id: TxId::derive(&client, n, "cc"),
            client,
            chaincode: "cc".into(),
            rwset,
            endorsements: Vec::new(),
        }
    }

    /// The worked example of §3: world state {K1,K2,K3}, five transactions.
    /// Expected: T1 valid, T2/T3 MVCC-invalid, T4/T5 valid.
    #[test]
    fn mvcc_paper_example() {
        let mut state = WorldState::new();
        let vn1 = Height::new(1, 0);
        let vn2 = Height::new(1, 1);
        let vn3 = Height::new(1, 2);
        state.put("K1".into(), b"VL1".to_vec(), vn1);
        state.put("K2".into(), b"VL2".to_vec(), vn2);
        state.put("K3".into(), b"VL3".to_vec(), vn3);

        // T1: reads K2@VN2, writes K2.
        let mut t1 = ReadWriteSet::new();
        t1.reads.record("K2", Some(vn2));
        t1.writes.put("K2", b"VL1'".to_vec());
        // T2: reads K1@VN1 and K2@VN2, writes K3.
        let mut t2 = ReadWriteSet::new();
        t2.reads.record("K1", Some(vn1));
        t2.reads.record("K2", Some(vn2));
        t2.writes.put("K3", b"VL3'".to_vec());
        // T3: reads K2@VN2, writes K3.
        let mut t3 = ReadWriteSet::new();
        t3.reads.record("K2", Some(vn2));
        t3.writes.put("K3", b"VL1'".to_vec());
        // T4: reads K3@VN3, writes K2.
        let mut t4 = ReadWriteSet::new();
        t4.reads.record("K3", Some(vn3));
        t4.writes.put("K2", b"VL1''".to_vec());
        // T5: empty read set, writes K3.
        let mut t5 = ReadWriteSet::new();
        t5.writes.put("K3", b"VL2'".to_vec());

        let txs = vec![tx(1, t1), tx(2, t2), tx(3, t3), tx(4, t4), tx(5, t5)];
        let mut block = Block::assemble(2, [0; 32], txs);
        let stats = validate_and_commit(&mut block, &mut state, &[], false);

        assert_eq!(
            block.validation_codes,
            vec![
                ValidationCode::Valid,
                ValidationCode::MvccConflict,
                ValidationCode::MvccConflict,
                ValidationCode::Valid,
                ValidationCode::Valid,
            ]
        );
        assert_eq!(stats.successes, 3);
        // T4's write of K2 supersedes T1's within the same block.
        assert_eq!(state.value("K2"), Some(&b"VL1''"[..]));
        assert_eq!(state.version("K2"), Some(Height::new(2, 3)));
        // T5 wrote K3 last.
        assert_eq!(state.version("K3"), Some(Height::new(2, 4)));
        // K1 untouched.
        assert_eq!(state.version("K1"), Some(vn1));
    }

    #[test]
    fn read_of_missing_key_validates_against_absence() {
        let mut state = WorldState::new();
        let mut rw = ReadWriteSet::new();
        rw.reads.record("ghost", None);
        rw.writes.put("ghost", b"v".to_vec());
        let mut block = Block::assemble(0, [0; 32], vec![tx(1, rw)]);
        validate_and_commit(&mut block, &mut state, &[], false);
        assert_eq!(block.validation_codes, vec![ValidationCode::Valid]);

        // Same read-set in the next block now conflicts: the key exists.
        let mut rw2 = ReadWriteSet::new();
        rw2.reads.record("ghost", None);
        rw2.writes.put("ghost", b"w".to_vec());
        let mut block2 = Block::assemble(1, [0; 32], vec![tx(2, rw2)]);
        validate_and_commit(&mut block2, &mut state, &[], false);
        assert_eq!(block2.validation_codes, vec![ValidationCode::MvccConflict]);
    }

    #[test]
    fn intra_block_conflict_first_wins() {
        let mut state = WorldState::new();
        state.put("hot".into(), b"0".to_vec(), Height::new(1, 0));
        let make = |n: u64| {
            let mut rw = ReadWriteSet::new();
            rw.reads.record("hot", Some(Height::new(1, 0)));
            rw.writes.put("hot", vec![n as u8]);
            tx(n, rw)
        };
        let mut block = Block::assemble(2, [0; 32], (0..5).map(make).collect());
        let stats = validate_and_commit(&mut block, &mut state, &[], false);
        assert_eq!(stats.successes, 1);
        assert_eq!(block.validation_codes[0], ValidationCode::Valid);
        assert!(block.validation_codes[1..]
            .iter()
            .all(|c| *c == ValidationCode::MvccConflict));
    }

    #[test]
    fn write_only_transactions_never_conflict() {
        let mut state = WorldState::new();
        state.put("k".into(), b"0".to_vec(), Height::new(1, 0));
        let make = |n: u64| {
            let mut rw = ReadWriteSet::new();
            rw.writes.put("k", vec![n as u8]);
            tx(n, rw)
        };
        let mut block = Block::assemble(2, [0; 32], (0..4).map(make).collect());
        let stats = validate_and_commit(&mut block, &mut state, &[], false);
        assert_eq!(stats.successes, 4);
        // Last writer's value sticks.
        assert_eq!(state.value("k"), Some(&[3u8][..]));
    }

    #[test]
    fn pre_decided_rejections_are_recorded_and_skip_commit() {
        let mut state = WorldState::new();
        let mut rw = ReadWriteSet::new();
        rw.writes.put("k", b"v".to_vec());
        let mut block = Block::assemble(0, [0; 32], vec![tx(1, rw)]);
        let pre = vec![Some(ValidationCode::EndorsementPolicyFailure)];
        let stats = validate_and_commit(&mut block, &mut state, &pre, false);
        assert_eq!(
            block.validation_codes,
            vec![ValidationCode::EndorsementPolicyFailure]
        );
        assert_eq!(stats.successes, 0);
        assert!(state.value("k").is_none());
    }

    #[test]
    fn crdt_aware_skips_read_check_for_crdt_pairs() {
        let mut state = WorldState::new();
        state.put("doc".into(), b"{}".to_vec(), Height::new(1, 0));
        // Both transactions read doc at a stale version but write it as CRDT.
        let make = |n: u64| {
            let mut rw = ReadWriteSet::new();
            rw.reads.record("doc", Some(Height::new(0, 0))); // stale!
            rw.writes.put_crdt("doc", vec![n as u8]);
            tx(n, rw)
        };
        let mut block = Block::assemble(2, [0; 32], (0..3).map(make).collect());
        let stats = validate_and_commit(&mut block, &mut state, &[], true);
        assert_eq!(stats.successes, 3);
        assert!(block
            .validation_codes
            .iter()
            .all(|c| *c == ValidationCode::ValidMerged));
        // Without CRDT awareness the same block all-fails.
        let mut state2 = WorldState::new();
        state2.put("doc".into(), b"{}".to_vec(), Height::new(1, 0));
        let mut block2 = Block::assemble(2, [0; 32], (0..3).map(make).collect());
        let stats2 = validate_and_commit(&mut block2, &mut state2, &[], false);
        assert_eq!(stats2.successes, 0);
    }

    #[test]
    fn crdt_transactions_skip_even_non_crdt_reads() {
        // §4.3: CRDT transactions only go through endorsement
        // validation — a stale *plain* read inside a CRDT transaction
        // is not checked. (This is exactly the §6 double-spend caveat.)
        let mut state = WorldState::new();
        state.put("doc".into(), b"{}".to_vec(), Height::new(1, 0));
        state.put("plain".into(), b"x".to_vec(), Height::new(1, 1));
        let mut rw = ReadWriteSet::new();
        rw.reads.record("doc", Some(Height::new(0, 0)));
        rw.reads.record("plain", Some(Height::new(0, 0))); // stale, not CRDT
        rw.writes.put_crdt("doc", b"d".to_vec());
        rw.writes.put("plain", b"y".to_vec());
        let mut block = Block::assemble(2, [0; 32], vec![tx(1, rw)]);
        let stats = validate_and_commit(&mut block, &mut state, &[], true);
        assert_eq!(block.validation_codes, vec![ValidationCode::ValidMerged]);
        assert_eq!(stats.successes, 1);
        // The version lookups still happen (cost), the comparison does not.
        assert_eq!(stats.reads_checked, 2);

        // The same transaction on vanilla Fabric conflicts.
        let mut state2 = WorldState::new();
        state2.put("doc".into(), b"{}".to_vec(), Height::new(1, 0));
        state2.put("plain".into(), b"x".to_vec(), Height::new(1, 1));
        let mut rw2 = ReadWriteSet::new();
        rw2.reads.record("plain", Some(Height::new(0, 0)));
        rw2.writes.put_crdt("doc", b"d".to_vec());
        let mut block2 = Block::assemble(2, [0; 32], vec![tx(2, rw2)]);
        validate_and_commit(&mut block2, &mut state2, &[], false);
        assert_eq!(block2.validation_codes, vec![ValidationCode::MvccConflict]);
    }

    #[test]
    fn delete_writes_remove_keys() {
        let mut state = WorldState::new();
        state.put("k".into(), b"v".to_vec(), Height::new(1, 0));
        let mut rw = ReadWriteSet::new();
        rw.writes.delete("k");
        let mut block = Block::assemble(2, [0; 32], vec![tx(1, rw)]);
        validate_and_commit(&mut block, &mut state, &[], false);
        assert!(state.value("k").is_none());
    }

    #[test]
    fn stats_count_work() {
        let mut state = WorldState::new();
        state.put("a".into(), b"1".to_vec(), Height::new(1, 0));
        state.put("b".into(), b"2".to_vec(), Height::new(1, 1));
        let mut rw = ReadWriteSet::new();
        rw.reads.record("a", Some(Height::new(1, 0)));
        rw.reads.record("b", Some(Height::new(1, 1)));
        rw.writes.put("a", b"3".to_vec());
        let mut block = Block::assemble(2, [0; 32], vec![tx(1, rw)]);
        let stats = validate_and_commit(&mut block, &mut state, &[], false);
        assert_eq!(stats.reads_checked, 2);
        assert_eq!(stats.writes_applied, 1);
        assert_eq!(stats.successes, 1);
    }

    /// Test-only [`ChainState`] over a plain [`WorldState`].
    struct CellState(std::cell::RefCell<WorldState>);

    impl CellState {
        fn new(state: WorldState) -> Self {
            CellState(std::cell::RefCell::new(state))
        }
    }

    impl ChainState for CellState {
        fn version(&self, key: &str) -> Option<Height> {
            self.0.borrow().version(key)
        }
        fn put(&self, key: String, value: Vec<u8>, version: Height) {
            self.0.borrow_mut().put(key, value, version);
        }
        fn delete(&self, key: &str) {
            self.0.borrow_mut().delete(key);
        }
    }

    /// A single chain spanning the whole block reproduces the
    /// sequential pass exactly: same codes, stats, and end state.
    #[test]
    fn full_chain_matches_sequential_pass() {
        let seed = {
            let mut s = WorldState::new();
            s.put("hot".into(), b"0".to_vec(), Height::new(1, 0));
            s
        };
        let make = |n: u64| {
            let mut rw = ReadWriteSet::new();
            rw.reads.record("hot", Some(Height::new(1, 0)));
            rw.writes.put("hot", vec![n as u8]);
            tx(n, rw)
        };
        let txs: Vec<Transaction> = (0..5).map(make).collect();

        let mut seq_state = seed.clone();
        let mut block = Block::assemble(2, [0; 32], txs.clone());
        let seq_stats = validate_and_commit(&mut block, &mut seq_state, &[], false);

        let chain_state = CellState::new(seed);
        let chain: Vec<usize> = (0..txs.len()).collect();
        let commit = validate_chain(2, &txs, &chain, &chain_state, false, |_, _| None);

        assert_eq!(commit.stats, seq_stats);
        assert_eq!(
            commit.codes.iter().map(|(_, c)| *c).collect::<Vec<_>>(),
            block.validation_codes
        );
        assert_eq!(chain_state.0.into_inner(), seq_state);
    }

    /// Disjoint chains validated separately produce the sequential end
    /// state, and heights keep the block-global transaction index.
    #[test]
    fn disjoint_chains_commit_at_global_heights() {
        let make = |n: u64| {
            let mut rw = ReadWriteSet::new();
            rw.writes.put(format!("k{n}"), vec![n as u8]);
            tx(n, rw)
        };
        let txs: Vec<Transaction> = (0..4).map(make).collect();
        let state = CellState::new(WorldState::new());
        // Chains {0, 2} and {1, 3} — interleaved on purpose.
        let a = validate_chain(7, &txs, &[0, 2], &state, false, |_, _| None);
        let b = validate_chain(7, &txs, &[1, 3], &state, false, |_, _| None);
        assert_eq!(a.stats.successes + b.stats.successes, 4);
        let final_state = state.0.into_inner();
        for n in 0..4u64 {
            assert_eq!(
                final_state.version(&format!("k{n}")),
                Some(Height::new(7, n)),
                "height uses the block-global index"
            );
        }
    }

    /// `value_for` substitutes converged CRDT bytes for the raw payload
    /// (the sequential pass sees rewritten transactions instead).
    #[test]
    fn value_override_replaces_written_bytes() {
        let mut rw = ReadWriteSet::new();
        rw.writes.put_crdt("doc", b"raw".to_vec());
        let txs = vec![tx(1, rw)];
        let state = CellState::new(WorldState::new());
        let commit = validate_chain(3, &txs, &[0], &state, true, |i, key| {
            assert_eq!((i, key), (0, "doc"));
            Some(b"merged".to_vec())
        });
        assert_eq!(commit.codes, vec![(0, ValidationCode::ValidMerged)]);
        assert_eq!(state.0.into_inner().value("doc"), Some(&b"merged"[..]));
    }

    /// Chain validation preserves count-then-break and the CRDT skip.
    #[test]
    fn chain_read_check_semantics_match_sequential() {
        let mut seed = WorldState::new();
        seed.put("a".into(), b"1".to_vec(), Height::new(1, 0));
        seed.put("b".into(), b"2".to_vec(), Height::new(1, 1));
        // Stale read of "a" (first in key order) then a read of "b":
        // the break must stop counting after the first mismatch.
        let mut rw = ReadWriteSet::new();
        rw.reads.record("a", Some(Height::new(0, 0)));
        rw.reads.record("b", Some(Height::new(1, 1)));
        rw.writes.put("c", b"x".to_vec());
        let txs = vec![tx(1, rw)];

        let state = CellState::new(seed.clone());
        let commit = validate_chain(2, &txs, &[0], &state, false, |_, _| None);
        assert_eq!(commit.codes, vec![(0, ValidationCode::MvccConflict)]);
        assert_eq!(commit.stats.reads_checked, 1);

        let mut block = Block::assemble(2, [0; 32], txs);
        let seq = validate_and_commit(&mut block, &mut seed.clone(), &[], false);
        assert_eq!(commit.stats, seq);
    }
}
