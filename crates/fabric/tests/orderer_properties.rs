//! Randomized property tests for the ordering service: no transaction
//! is lost or duplicated across cut blocks, block sizes respect the
//! configured maximum, and numbering/hash-chaining stay consistent —
//! for both the vanilla and the reordering orderer. Driven by the
//! deterministic in-repo generator (`fabriccrdt_sim::gen`).

use fabriccrdt_crypto::Identity;
use fabriccrdt_fabric::config::BlockCutConfig;
use fabriccrdt_fabric::orderer::Orderer;
use fabriccrdt_ledger::block::Block;
use fabriccrdt_ledger::chain::Blockchain;
use fabriccrdt_ledger::rwset::ReadWriteSet;
use fabriccrdt_ledger::transaction::{Transaction, TxId};
use fabriccrdt_ledger::version::Height;
use fabriccrdt_sim::gen;
use fabriccrdt_sim::time::SimTime;

fn tx(nonce: u64, read_key: Option<u8>, write_key: u8) -> Transaction {
    let client = Identity::new("client", "org1");
    let mut rwset = ReadWriteSet::new();
    if let Some(k) = read_key {
        rwset.reads.record(format!("k{k}"), Some(Height::new(1, 0)));
    }
    rwset.writes.put(format!("k{write_key}"), vec![nonce as u8]);
    Transaction {
        id: TxId::derive(&client, nonce, "cc"),
        client,
        chaincode: "cc".into(),
        rwset,
        endorsements: Vec::new(),
    }
}

/// Drives an orderer over a transaction stream, flushing stragglers via
/// the timeout, and returns the cut blocks plus early aborts.
fn drive(orderer: &mut Orderer, txs: Vec<Transaction>) -> (Vec<Block>, Vec<Transaction>) {
    let mut blocks = Vec::new();
    let mut last_timeout = None;
    for (i, tx) in txs.into_iter().enumerate() {
        let (block, timeout) = orderer.receive(tx, SimTime::from_millis(i as u64));
        if let Some(t) = timeout {
            last_timeout = Some(t);
        }
        blocks.extend(block);
    }
    if let Some(t) = last_timeout {
        blocks.extend(orderer.timeout_fired(t));
    }
    let aborted = orderer.take_early_aborted();
    (blocks, aborted)
}

/// Conservation: every submitted transaction appears exactly once —
/// either in a cut block or (reordering only) in the early-abort set.
/// Block sizes never exceed the maximum; numbering is sequential; blocks
/// chain onto genesis.
#[test]
fn orderer_conserves_transactions() {
    gen::cases(128, |g| {
        let n = g.size(1, 59);
        let max_tx = g.size(1, 11);
        let reorder = g.flip();
        let keys: Vec<(Option<u8>, u8)> = g.vec(60, 60, |g| {
            let read = if g.flip() {
                Some(g.range(0, 4) as u8)
            } else {
                None
            };
            (read, g.range(0, 4) as u8)
        });
        let config = BlockCutConfig::with_max_tx(max_tx);
        let mut orderer = if reorder {
            Orderer::with_reordering(config)
        } else {
            Orderer::new(config)
        };
        let txs: Vec<Transaction> = (0..n)
            .map(|i| {
                let (read, write) = keys[i % keys.len()];
                tx(i as u64, read, write)
            })
            .collect();
        let submitted: std::collections::BTreeSet<TxId> = txs.iter().map(|t| t.id).collect();

        let (blocks, aborted) = drive(&mut orderer, txs);

        let mut seen = std::collections::BTreeSet::new();
        for block in &blocks {
            assert!(block.len() <= max_tx, "block over size");
            for t in &block.transactions {
                assert!(seen.insert(t.id), "duplicate {:?}", t.id.short());
            }
        }
        for t in &aborted {
            assert!(seen.insert(t.id), "aborted duplicate");
        }
        assert_eq!(seen, submitted);
        if !reorder {
            assert!(aborted.is_empty());
        }

        // Blocks append cleanly onto a genesis-rooted chain.
        let mut chain = Blockchain::new();
        chain.append(Block::genesis()).unwrap();
        for block in blocks {
            chain.append(block).unwrap();
        }
        chain.verify_integrity().unwrap();
    });
}

/// The vanilla orderer preserves arrival order within and across blocks
/// (FIFO total order).
#[test]
fn vanilla_orderer_is_fifo() {
    gen::cases(128, |g| {
        let n = g.size(1, 49);
        let max_tx = g.size(1, 9);
        let mut orderer = Orderer::new(BlockCutConfig::with_max_tx(max_tx));
        let txs: Vec<Transaction> = (0..n).map(|i| tx(i as u64, None, 0)).collect();
        let order_in: Vec<TxId> = txs.iter().map(|t| t.id).collect();
        let (blocks, _) = drive(&mut orderer, txs);
        let order_out: Vec<TxId> = blocks
            .iter()
            .flat_map(|b| b.transactions.iter().map(|t| t.id))
            .collect();
        assert_eq!(order_in, order_out);
    });
}
