//! Late-joining peers catch up to byte-identical ledgers.
//!
//! Fabric peers bootstrap either from a ledger snapshot (v2) or by
//! replaying the channel's blocks. Both paths must land on exactly the
//! state of a peer that processed the whole run live — the invariant
//! the gossip layer's anti-entropy state transfer relies on. This is
//! the integration-test promotion of `examples/peer_catchup.rs`
//! (which demonstrates the same flow with the CRDT validator).

use std::sync::Arc;

use fabriccrdt_fabric::chaincode::{Chaincode, ChaincodeError, ChaincodeRegistry, ChaincodeStub};
use fabriccrdt_fabric::config::{PipelineConfig, Topology};
use fabriccrdt_fabric::peer::Peer;
use fabriccrdt_fabric::simulation::{Simulation, TxRequest};
use fabriccrdt_fabric::validator::FabricValidator;
use fabriccrdt_ledger::codec;
use fabriccrdt_sim::time::SimTime;

/// Read-modify-write chaincode on a single key: args = [key, value].
struct RmwChaincode;

impl Chaincode for RmwChaincode {
    fn name(&self) -> &str {
        "rmw"
    }

    fn invoke(&self, stub: &mut ChaincodeStub<'_>, args: &[String]) -> Result<(), ChaincodeError> {
        stub.get_state(&args[0]);
        stub.put_state(&args[0], args[1].clone().into_bytes());
        Ok(())
    }
}

fn registry() -> ChaincodeRegistry {
    let mut reg = ChaincodeRegistry::new();
    reg.deploy(Arc::new(RmwChaincode));
    reg
}

fn schedule(n: usize) -> Vec<(SimTime, TxRequest)> {
    (0..n)
        .map(|i| {
            let request = if i % 3 == 0 {
                // Conflicting traffic so blocks carry a mix of valid and
                // failed transactions — catch-up must preserve both.
                TxRequest::new("rmw", vec!["hot".into(), format!("v{i}")])
            } else {
                TxRequest::new("rmw", vec![format!("k{i}"), format!("v{i}")])
            };
            (SimTime::from_secs_f64(i as f64 / 300.0), request)
        })
        .collect()
}

/// A network that processed 200 transactions, a replica restored from
/// its snapshot, and a replica that replayed its serialized chain —
/// then one more block of traffic applied to all three.
#[test]
fn snapshot_and_replay_bootstrap_match_the_veteran() {
    let mut sim = Simulation::new(
        PipelineConfig::paper(25, 29),
        FabricValidator::new(),
        registry(),
    );
    sim.seed_state("hot", b"0".to_vec());
    let metrics = sim.run(schedule(200));
    assert_eq!(metrics.submitted(), 200);
    assert!(metrics.blocks_committed >= 8);

    let veteran = sim.peer();
    let snapshot = veteran.snapshot();

    // Replica B bootstraps from the snapshot.
    let mut replica_b = Peer::restore(
        FabricValidator::new(),
        Topology::paper().default_policy(),
        &snapshot,
    )
    .expect("snapshot restores");

    // Replica C replays the serialized chain block by block. Committed
    // blocks carry the recorded validation codes, so replay reproduces
    // exactly what the live peer decided.
    let chain = codec::decode_chain(&snapshot.chain).expect("chain decodes");
    let mut replica_c: Peer<FabricValidator> =
        Peer::new(FabricValidator::new(), Topology::paper().default_policy());
    replica_c.seed_state("hot", b"0".to_vec());
    for block in chain.iter().skip(1) {
        replica_c
            .replay_block(block.clone())
            .expect("replay extends the chain");
    }

    assert_eq!(replica_b.state(), veteran.state(), "snapshot catch-up");
    assert_eq!(replica_c.state(), veteran.state(), "replay catch-up");
    assert_eq!(replica_b.chain().tip_hash(), veteran.chain().tip_hash());
    assert_eq!(replica_c.chain().tip_hash(), veteran.chain().tip_hash());

    // Serialized ledgers are byte-identical, not merely equal.
    assert_eq!(replica_b.snapshot().state, snapshot.state);
    assert_eq!(replica_b.snapshot().chain, snapshot.chain);
    assert_eq!(replica_c.snapshot().state, snapshot.state);
    assert_eq!(replica_c.snapshot().chain, snapshot.chain);

    // The caught-up replicas keep pace: run one more block of traffic
    // through the network and replay it onto both.
    let before = veteran.chain().height();
    let more = sim.run(vec![(
        SimTime::ZERO,
        TxRequest::new("rmw", vec!["fresh".into(), "after-catchup".into()]),
    )]);
    assert_eq!(more.successful(), 1);
    let veteran = sim.peer();
    for number in before..veteran.chain().height() {
        let block = veteran.chain().block(number).expect("new block").clone();
        replica_b.replay_block(block.clone()).expect("B follows");
        replica_c.replay_block(block).expect("C follows");
    }
    assert_eq!(replica_b.state(), veteran.state());
    assert_eq!(replica_c.state(), veteran.state());
    assert_eq!(replica_b.chain().tip_hash(), veteran.chain().tip_hash());
    assert_eq!(replica_c.chain().tip_hash(), veteran.chain().tip_hash());
}

/// Replay rejects a block whose chain linkage does not fit — a
/// late-joining peer cannot be fed a forged continuation.
#[test]
fn replay_rejects_out_of_sequence_blocks() {
    let mut sim = Simulation::new(
        PipelineConfig::paper(10, 5),
        FabricValidator::new(),
        registry(),
    );
    let metrics = sim.run(schedule(40));
    assert!(metrics.blocks_committed >= 2);

    let snapshot = sim.peer().snapshot();
    let chain = codec::decode_chain(&snapshot.chain).expect("chain decodes");
    let mut replica: Peer<FabricValidator> =
        Peer::new(FabricValidator::new(), Topology::paper().default_policy());
    // Skipping block 1 breaks the hash chain.
    let out_of_order = chain.block(2).expect("block 2 exists").clone();
    replica
        .replay_block(out_of_order)
        .expect_err("gap in the chain is rejected");
}
