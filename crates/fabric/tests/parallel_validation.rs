//! Equivalence sweep for the [`ValidationPipeline`] seam.
//!
//! The parallel pre-validation stage may only change wall-clock time,
//! never outcomes: for every workload, every fault/corruption mix and
//! every worker count, `Parallel { workers }` must produce
//! byte-identical ledgers (serialized world state *and* chain) and
//! identical [`RunMetrics`] — including the work-derived simulated
//! timestamps — as the seed's `Sequential` path. The sweep reuses the
//! deterministic in-repo generator (`fabriccrdt_sim::gen`), the same
//! harness style as the `raft_safety` sweep.

use std::sync::Arc;

use fabriccrdt_crypto::{Identity, KeyPair};
use fabriccrdt_fabric::chaincode::{Chaincode, ChaincodeError, ChaincodeRegistry, ChaincodeStub};
use fabriccrdt_fabric::config::PipelineConfig;
use fabriccrdt_fabric::metrics::RunMetrics;
use fabriccrdt_fabric::peer::{Peer, PeerSnapshot};
use fabriccrdt_fabric::pipeline::ValidationPipeline;
use fabriccrdt_fabric::policy::EndorsementPolicy;
use fabriccrdt_fabric::simulation::{Simulation, TxRequest};
use fabriccrdt_fabric::validator::FabricValidator;
use fabriccrdt_ledger::block::{Block, ValidationCode};
use fabriccrdt_ledger::rwset::ReadWriteSet;
use fabriccrdt_ledger::transaction::{Endorsement, Transaction, TxId};
use fabriccrdt_sim::gen::{self, Gen};
use fabriccrdt_sim::time::SimTime;

/// Read-modify-write chaincode: args = [key, value]. Conflicting
/// reads make MVCC outcomes sensitive to block formation, which in
/// turn makes the metrics sensitive to any accounting drift.
struct Rmw;

impl Chaincode for Rmw {
    fn name(&self) -> &str {
        "rmw"
    }

    fn invoke(&self, stub: &mut ChaincodeStub<'_>, args: &[String]) -> Result<(), ChaincodeError> {
        stub.get_state(&args[0]);
        stub.put_state(&args[0], args[1].clone().into_bytes());
        Ok(())
    }
}

/// Write-only chaincode: args = [key, value].
struct WriteOnly;

impl Chaincode for WriteOnly {
    fn name(&self) -> &str {
        "writeonly"
    }

    fn invoke(&self, stub: &mut ChaincodeStub<'_>, args: &[String]) -> Result<(), ChaincodeError> {
        stub.put_state(&args[0], args[1].clone().into_bytes());
        Ok(())
    }
}

fn registry() -> ChaincodeRegistry {
    let mut reg = ChaincodeRegistry::new();
    reg.deploy(Arc::new(Rmw));
    reg.deploy(Arc::new(WriteOnly));
    reg
}

/// A randomized workload: disjoint writes, hot-key conflicts and a
/// sprinkle of corrupted endorsements (policy failures).
fn arb_schedule(g: &mut Gen) -> Vec<(SimTime, TxRequest)> {
    let n = g.size(20, 60);
    let rate = g.f64_in(100.0, 400.0);
    (0..n)
        .map(|i| {
            let request = if g.prob(0.4) {
                TxRequest::new("rmw", vec!["hot".into(), format!("v{i}")])
            } else {
                TxRequest::new("writeonly", vec![format!("k{i}"), format!("v{i}")])
            };
            let request = if g.prob(0.1) {
                request.with_corrupt_endorsement()
            } else {
                request
            };
            (SimTime::from_secs_f64(i as f64 / rate), request)
        })
        .collect()
}

fn run_with(
    pipeline: ValidationPipeline,
    block_size: usize,
    seed: u64,
    schedule: &[(SimTime, TxRequest)],
) -> (RunMetrics, PeerSnapshot) {
    let config = PipelineConfig::paper(block_size, seed).with_validation(pipeline);
    let mut sim = Simulation::new(config, FabricValidator::new(), registry());
    sim.seed_state("hot", b"0".to_vec());
    let metrics = sim.run(schedule.to_vec());
    let snapshot = sim.peer().snapshot();
    (metrics, snapshot)
}

/// The tentpole property: across 50 random workload/seed cases, every
/// worker count 1..=8 yields a byte-identical ledger and identical
/// run metrics vs the sequential seed path.
#[test]
fn parallel_validation_matches_sequential_over_seeded_sweep() {
    gen::cases(50, |g| {
        let seed = g.u64();
        let block_size = g.size(5, 25);
        let schedule = arb_schedule(g);
        let (seq_metrics, seq_snapshot) =
            run_with(ValidationPipeline::Sequential, block_size, seed, &schedule);
        for workers in 1..=8 {
            let (par_metrics, par_snapshot) = run_with(
                ValidationPipeline::parallel(workers),
                block_size,
                seed,
                &schedule,
            );
            assert_eq!(
                seq_snapshot.state, par_snapshot.state,
                "seed {seed}: world state diverged at {workers} workers"
            );
            assert_eq!(
                seq_snapshot.chain, par_snapshot.chain,
                "seed {seed}: chain diverged at {workers} workers"
            );
            assert_eq!(
                seq_metrics, par_metrics,
                "seed {seed}: metrics diverged at {workers} workers"
            );
        }
        // Cross-block pipelining must be equally invisible (the
        // simulation drives prevalidate_ahead/finish_block instead of
        // process_block, with lockless snapshot reads).
        let (pip_metrics, pip_snapshot) = run_with(
            ValidationPipeline::pipelined(4),
            block_size,
            seed,
            &schedule,
        );
        assert_eq!(
            seq_snapshot.state, pip_snapshot.state,
            "seed {seed}: world state diverged under pipelining"
        );
        assert_eq!(
            seq_snapshot.chain, pip_snapshot.chain,
            "seed {seed}: chain diverged under pipelining"
        );
        assert_eq!(
            seq_metrics, pip_metrics,
            "seed {seed}: metrics diverged under pipelining"
        );
    });
}

// ---- direct block replay: duplicate ids and tampered blocks --------

fn policy() -> EndorsementPolicy {
    EndorsementPolicy::all_of(vec!["org1".to_string()])
}

fn endorsed_tx(nonce: u64) -> Transaction {
    let client = Identity::new("client", "org1");
    let mut rwset = ReadWriteSet::new();
    rwset
        .writes
        .put(format!("k{nonce}"), nonce.to_le_bytes().to_vec());
    let mut tx = Transaction {
        id: TxId::derive(&client, nonce, "cc"),
        client,
        chaincode: "cc".into(),
        rwset,
        endorsements: Vec::new(),
    };
    let peer = KeyPair::derive(Identity::new("peer0", "org1"));
    tx.endorsements.push(Endorsement {
        endorser: peer.identity().clone(),
        signature: peer.sign(&tx.response_payload()),
    });
    tx
}

fn badly_endorsed_tx(nonce: u64) -> Transaction {
    let mut tx = endorsed_tx(nonce);
    tx.endorsements[0].signature.0[0] ^= 0xFF;
    tx
}

/// Replays a hand-built block stream — including in-block duplicates,
/// cross-block duplicates and policy failures — through a peer with
/// the given pipeline, returning snapshot plus per-block codes and
/// work-derived signature counts.
fn replay(
    pipeline: ValidationPipeline,
    blocks: &[Block],
) -> (PeerSnapshot, Vec<Vec<ValidationCode>>, Vec<u64>) {
    let mut peer = Peer::new(FabricValidator::new(), policy()).with_pipeline(pipeline);
    let mut codes = Vec::new();
    let mut sigs = Vec::new();
    for block in blocks {
        let staged = peer.process_block(block.clone());
        codes.push(staged.block.validation_codes.clone());
        sigs.push(staged.work.sigs_verified);
        peer.commit(staged).expect("blocks arrive in chain order");
    }
    (peer.snapshot(), codes, sigs)
}

/// Duplicate-id short-circuiting must not drift between pipelines:
/// the seed skips signature verification for duplicates, and the
/// work counters drive simulated time, so a parallel path that
/// verified them anyway would silently change every timestamp.
#[test]
fn duplicates_and_policy_failures_identical_across_worker_counts() {
    let dup = endorsed_tx(1);
    let blocks = vec![
        // Block 1: one good tx, one in-block duplicate pair.
        Block::assemble(1, [0; 32], vec![endorsed_tx(2), dup.clone(), dup.clone()]),
        // Block 2: cross-block duplicate, a policy failure, a good tx.
        Block::assemble(2, [0; 32], vec![dup, badly_endorsed_tx(3), endorsed_tx(4)]),
    ];
    let (seq_snap, seq_codes, seq_sigs) = replay(ValidationPipeline::Sequential, &blocks);
    assert_eq!(
        seq_codes[0],
        vec![
            ValidationCode::Valid,
            ValidationCode::Valid,
            ValidationCode::DuplicateTxId
        ]
    );
    assert_eq!(
        seq_codes[1],
        vec![
            ValidationCode::DuplicateTxId,
            ValidationCode::EndorsementPolicyFailure,
            ValidationCode::Valid
        ]
    );
    // Duplicates skip signature verification entirely.
    assert_eq!(seq_sigs, vec![2, 2]);
    for workers in 1..=8 {
        let (snap, codes, sigs) = replay(ValidationPipeline::parallel(workers), &blocks);
        assert_eq!(snap, seq_snap, "{workers} workers: snapshot diverged");
        assert_eq!(codes, seq_codes, "{workers} workers: codes diverged");
        assert_eq!(sigs, seq_sigs, "{workers} workers: work diverged");
        let (snap, codes, sigs) = replay(ValidationPipeline::pipelined(workers), &blocks);
        assert_eq!(snap, seq_snap, "{workers} pipelined: snapshot diverged");
        assert_eq!(codes, seq_codes, "{workers} pipelined: codes diverged");
        assert_eq!(sigs, seq_sigs, "{workers} pipelined: work diverged");
    }
}

/// A tampered block (data hash mismatch) invalidates every transaction
/// before any signature is verified — under every pipeline.
#[test]
fn tampered_blocks_identical_across_worker_counts() {
    let mut block = Block::assemble(1, [0; 32], vec![endorsed_tx(1), endorsed_tx(2)]);
    block.header.data_hash = [0xAA; 32];
    let run = |pipeline: ValidationPipeline| {
        let mut peer = Peer::new(FabricValidator::new(), policy()).with_pipeline(pipeline);
        let staged = peer.process_block(block.clone());
        assert_eq!(staged.work.sigs_verified, 0);
        staged.block.validation_codes
    };
    let seq = run(ValidationPipeline::Sequential);
    assert_eq!(seq, vec![ValidationCode::TamperedBlock; 2]);
    for workers in 1..=8 {
        assert_eq!(run(ValidationPipeline::parallel(workers)), seq);
        assert_eq!(run(ValidationPipeline::pipelined(workers)), seq);
    }
}
