//! End-to-end tests of the EOV pipeline with the vanilla Fabric
//! validator.

use std::sync::Arc;

use fabriccrdt_fabric::chaincode::{Chaincode, ChaincodeError, ChaincodeRegistry, ChaincodeStub};
use fabriccrdt_fabric::config::{BlockCutConfig, PipelineConfig};
use fabriccrdt_fabric::latency::LatencyConfig;
use fabriccrdt_fabric::metrics::RunMetrics;
use fabriccrdt_fabric::simulation::{Simulation, TxRequest};
use fabriccrdt_fabric::validator::FabricValidator;
use fabriccrdt_ledger::block::ValidationCode;
use fabriccrdt_sim::time::SimTime;

/// Read-modify-write chaincode on a single key: args = [key, value].
struct RmwChaincode;

impl Chaincode for RmwChaincode {
    fn name(&self) -> &str {
        "rmw"
    }

    fn invoke(&self, stub: &mut ChaincodeStub<'_>, args: &[String]) -> Result<(), ChaincodeError> {
        if args.len() != 2 {
            return Err(ChaincodeError::new("need key and value"));
        }
        stub.get_state(&args[0]);
        stub.put_state(&args[0], args[1].clone().into_bytes());
        Ok(())
    }
}

/// Write-only chaincode: args = [key, value].
struct WriteOnlyChaincode;

impl Chaincode for WriteOnlyChaincode {
    fn name(&self) -> &str {
        "writeonly"
    }

    fn invoke(&self, stub: &mut ChaincodeStub<'_>, args: &[String]) -> Result<(), ChaincodeError> {
        stub.put_state(&args[0], args[1].clone().into_bytes());
        Ok(())
    }
}

/// Auditing chaincode: counts a key's history entries, emits an event.
struct AuditChaincode;

impl Chaincode for AuditChaincode {
    fn name(&self) -> &str {
        "audit"
    }

    fn invoke(&self, stub: &mut ChaincodeStub<'_>, args: &[String]) -> Result<(), ChaincodeError> {
        let versions = stub.get_history_for_key(&args[0]).len();
        stub.put_state(
            &format!("audit-{}", args[0]),
            versions.to_string().into_bytes(),
        );
        stub.set_event("audited", args[0].clone().into_bytes());
        Ok(())
    }
}

fn registry() -> ChaincodeRegistry {
    let mut reg = ChaincodeRegistry::new();
    reg.deploy(Arc::new(RmwChaincode));
    reg.deploy(Arc::new(WriteOnlyChaincode));
    reg.deploy(Arc::new(AuditChaincode));
    reg
}

fn config(block_size: usize, seed: u64) -> PipelineConfig {
    PipelineConfig::paper(block_size, seed)
}

fn schedule(n: usize, rate_tps: f64, f: impl Fn(usize) -> TxRequest) -> Vec<(SimTime, TxRequest)> {
    (0..n)
        .map(|i| (SimTime::from_secs_f64(i as f64 / rate_tps), f(i)))
        .collect()
}

fn run(
    block_size: usize,
    seed: u64,
    seeds: &[(&str, &[u8])],
    sched: Vec<(SimTime, TxRequest)>,
) -> RunMetrics {
    let mut sim = Simulation::new(config(block_size, seed), FabricValidator::new(), registry());
    for (k, v) in seeds {
        sim.seed_state(*k, v.to_vec());
    }
    sim.run(sched)
}

#[test]
fn disjoint_keys_all_commit() {
    let metrics = run(
        10,
        1,
        &[],
        schedule(100, 200.0, |i| {
            TxRequest::new("writeonly", vec![format!("k{i}"), "v".into()])
        }),
    );
    assert_eq!(metrics.submitted(), 100);
    assert_eq!(metrics.successful(), 100);
    assert!(metrics.blocks_committed >= 10);
}

#[test]
fn all_conflicting_mostly_fail_on_fabric() {
    let metrics = run(
        25,
        2,
        &[("hot", b"0")],
        schedule(500, 300.0, |_| {
            TxRequest::new("rmw", vec!["hot".into(), "v".into()])
        }),
    );
    assert_eq!(metrics.submitted(), 500);
    // The vast majority fail with MVCC conflicts (paper §7.3: Fabric
    // commits only very few when all transactions conflict).
    assert!(
        metrics.successful() < 100,
        "successes = {}",
        metrics.successful()
    );
    assert!(metrics.successful() >= 1);
    assert_eq!(
        metrics.failures_with(ValidationCode::MvccConflict),
        metrics.submitted() - metrics.successful()
    );
}

#[test]
fn write_only_transactions_never_fail() {
    let metrics = run(
        25,
        3,
        &[],
        schedule(300, 300.0, |_| {
            TxRequest::new("writeonly", vec!["same-key".into(), "v".into()])
        }),
    );
    // §3: write transactions have empty read sets and cannot conflict.
    assert_eq!(metrics.successful(), 300);
}

#[test]
fn latency_is_hundreds_of_milliseconds_uncongested() {
    let metrics = run(
        25,
        4,
        &[],
        schedule(200, 100.0, |i| {
            TxRequest::new("writeonly", vec![format!("k{i}"), "v".into()])
        }),
    );
    let avg = metrics
        .avg_latency_secs()
        .expect("run committed transactions");
    // §1: "on the order of hundreds of milliseconds to seconds".
    assert!(avg > 0.02 && avg < 2.0, "avg latency {avg}s");
}

#[test]
fn block_timeout_flushes_stragglers() {
    // 3 transactions with a block size of 100: only the 2 s timeout can
    // cut the block.
    let metrics = run(
        100,
        5,
        &[],
        schedule(3, 100.0, |i| {
            TxRequest::new("writeonly", vec![format!("k{i}"), "v".into()])
        }),
    );
    assert_eq!(metrics.successful(), 3);
    assert_eq!(metrics.blocks_committed, 1);
    // Commit happens after the timeout.
    assert!(metrics.end_time >= SimTime::from_secs(2));
}

#[test]
fn deterministic_across_runs() {
    let make = || {
        run(
            25,
            7,
            &[("hot", b"0")],
            schedule(200, 300.0, |i| {
                if i % 2 == 0 {
                    TxRequest::new("rmw", vec!["hot".into(), format!("v{i}")])
                } else {
                    TxRequest::new("writeonly", vec![format!("k{i}"), "v".into()])
                }
            }),
        )
    };
    let a = make();
    let b = make();
    assert_eq!(a.successful(), b.successful());
    assert_eq!(a.end_time, b.end_time);
    assert_eq!(a.blocks_committed, b.blocks_committed);
    let codes_a: Vec<_> = a.records.iter().map(|r| r.code).collect();
    let codes_b: Vec<_> = b.records.iter().map(|r| r.code).collect();
    assert_eq!(codes_a, codes_b);
}

#[test]
fn different_seeds_change_timings_not_logic() {
    let m1 = run(
        10,
        100,
        &[],
        schedule(50, 100.0, |i| {
            TxRequest::new("writeonly", vec![format!("k{i}"), "v".into()])
        }),
    );
    let m2 = run(
        10,
        101,
        &[],
        schedule(50, 100.0, |i| {
            TxRequest::new("writeonly", vec![format!("k{i}"), "v".into()])
        }),
    );
    assert_eq!(m1.successful(), m2.successful());
    assert_ne!(m1.end_time, m2.end_time);
}

#[test]
fn chain_integrity_holds_after_run() {
    let mut sim = Simulation::new(config(10, 8), FabricValidator::new(), registry());
    sim.seed_state("hot", b"0".to_vec());
    // Drive the simulation manually so we can inspect the peer after.
    let sched = schedule(40, 200.0, |_| {
        TxRequest::new("rmw", vec!["hot".into(), "v".into()])
    });
    // `run` consumes the simulation; rebuild to check state instead via
    // metrics plus a fresh run that exposes the peer.
    let metrics = sim.run(sched);
    assert_eq!(metrics.submitted(), 40);
}

#[test]
fn zero_latency_config_still_works() {
    let mut cfg = config(5, 9);
    cfg.latency = LatencyConfig::zero();
    let mut sim = Simulation::new(cfg, FabricValidator::new(), registry());
    sim.seed_state("hot", b"0".to_vec());
    let metrics = sim.run(schedule(20, 1000.0, |_| {
        TxRequest::new("rmw", vec!["hot".into(), "v".into()])
    }));
    assert_eq!(metrics.submitted(), 20);
    // With zero latency, endorsement sees the freshest state more often,
    // but sequential commits still invalidate same-block conflicts.
    assert!(metrics.successful() >= 1);
}

#[test]
fn larger_blocks_fewer_blocks() {
    let small = run(
        5,
        10,
        &[],
        schedule(100, 500.0, |i| {
            TxRequest::new("writeonly", vec![format!("k{i}"), "v".into()])
        }),
    );
    let large = run(
        50,
        10,
        &[],
        schedule(100, 500.0, |i| {
            TxRequest::new("writeonly", vec![format!("k{i}"), "v".into()])
        }),
    );
    assert!(small.blocks_committed > large.blocks_committed);
    assert_eq!(small.successful(), large.successful());
}

#[test]
fn block_cut_config_respected() {
    let cfg = BlockCutConfig::with_max_tx(7);
    assert_eq!(cfg.max_tx_count, 7);
}

#[test]
fn history_and_events_flow_through_the_pipeline() {
    let mut sim = Simulation::new(config(5, 33), FabricValidator::new(), registry());
    // Phase 1: three writes to the same key across separate blocks.
    let writes: Vec<(SimTime, TxRequest)> = (0..3)
        .map(|i| {
            (
                SimTime::from_millis(i * 400), // one per block (size 5, slow)
                TxRequest::new("writeonly", vec!["asset".into(), format!("v{i}")]),
            )
        })
        .collect();
    let phase1 = sim.run(writes);
    assert_eq!(phase1.successful(), 3);
    assert_eq!(sim.peer().history().history("asset").len(), 3);

    // Phase 2: the audit chaincode reads the history and emits an event.
    let phase2 = sim.run(vec![(
        SimTime::ZERO,
        TxRequest::new("audit", vec!["asset".into()]),
    )]);
    assert_eq!(phase2.successful(), 1);
    assert_eq!(phase2.events.len(), 1);
    assert_eq!(phase2.events[0].name, "audited");
    assert_eq!(phase2.events[0].payload, b"asset");
    // The audit counted the three committed versions.
    assert_eq!(sim.peer().state().value("audit-asset"), Some(&b"3"[..]));
}

#[test]
fn events_not_delivered_for_failed_transactions() {
    let mut sim = Simulation::new(config(25, 34), FabricValidator::new(), registry());
    // The audit chaincode always sets an event; corrupt its endorsement
    // so the transaction fails — the event must not fire.
    let metrics = sim.run(vec![(
        SimTime::ZERO,
        TxRequest::new("audit", vec!["x".into()]).with_corrupt_endorsement(),
    )]);
    assert_eq!(metrics.successful(), 0);
    assert!(metrics.events.is_empty());
}

#[test]
fn client_retries_eventually_commit_conflicting_transactions() {
    let base_sched = || {
        schedule(120, 300.0, |_| {
            TxRequest::new("rmw", vec!["hot".into(), "v".into()])
        })
    };

    // Without retries: most conflict.
    let mut sim = Simulation::new(config(25, 31), FabricValidator::new(), registry());
    sim.seed_state("hot", b"0".to_vec());
    let no_retries = sim.run(base_sched());
    assert!(no_retries.successful() < 40);
    assert_eq!(no_retries.resubmissions, 0);

    // With a generous retry budget: clients grind the workload through,
    // at the cost of many resubmissions and far higher latency.
    let mut sim = Simulation::new(
        config(25, 31).with_client_retries(50),
        FabricValidator::new(),
        registry(),
    );
    sim.seed_state("hot", b"0".to_vec());
    let with_retries = sim.run(base_sched());
    assert!(
        with_retries.successful() > no_retries.successful() * 2,
        "retries recover successes: {} vs {}",
        with_retries.successful(),
        no_retries.successful()
    );
    assert!(with_retries.resubmissions > 100, "retries cost round trips");
    assert!(
        with_retries.avg_latency_secs().unwrap() > no_retries.avg_latency_secs().unwrap(),
        "retry latency spans multiple pipeline rounds"
    );
}

#[test]
fn corrupted_endorsements_fail_policy_validation() {
    let mut sim = Simulation::new(config(10, 11), FabricValidator::new(), registry());
    let sched: Vec<(SimTime, TxRequest)> = (0..30)
        .map(|i| {
            let request = TxRequest::new("writeonly", vec![format!("k{i}"), "v".into()]);
            let request = if i % 3 == 0 {
                request.with_corrupt_endorsement()
            } else {
                request
            };
            (SimTime::from_secs_f64(i as f64 / 200.0), request)
        })
        .collect();
    let metrics = sim.run(sched);
    assert_eq!(metrics.successful(), 20);
    assert_eq!(
        metrics.failures_with(ValidationCode::EndorsementPolicyFailure),
        10
    );
    // Failed transactions never touched the state.
    assert!(sim.peer().state().value("k0").is_none());
    assert!(sim.peer().state().value("k1").is_some());
}

#[test]
fn reordering_network_end_to_end() {
    // Readers of a hot key mixed with blind writers: the reordering
    // orderer rescues readers that vanilla ordering would fail.
    let build_sched = || -> Vec<(SimTime, TxRequest)> {
        (0..200)
            .map(|i| {
                let request = if i % 2 == 0 {
                    TxRequest::new("writeonly", vec!["hot".into(), format!("v{i}")])
                } else {
                    TxRequest::new("rmw", vec![format!("priv-{i}"), "v".into()])
                    // reader of hot: rmw chaincode reads its first arg;
                    // use a custom mix below instead
                };
                (SimTime::from_secs_f64(i as f64 / 300.0), request)
            })
            .collect()
    };
    let mut vanilla = Simulation::new(config(50, 12), FabricValidator::new(), registry());
    vanilla.seed_state("hot", b"0".to_vec());
    let vanilla_metrics = vanilla.run(build_sched());

    let mut reordering = Simulation::new(
        config(50, 12).with_reordering(),
        FabricValidator::new(),
        registry(),
    );
    reordering.seed_state("hot", b"0".to_vec());
    let reorder_metrics = reordering.run(build_sched());

    // This mix has no read-write conflicts (writers blind, readers on
    // private keys), so both commit everything — the reordering pipeline
    // must not regress conflict-free workloads.
    assert_eq!(vanilla_metrics.successful(), 200);
    assert_eq!(reorder_metrics.successful(), 200);
    assert_eq!(
        reorder_metrics.failures_with(ValidationCode::EarlyAborted),
        0
    );
}
