//! Directed tests for the conflict-graph finalize schedule (DESIGN.md
//! §4.10): the two extreme workloads the scheduler must degenerate
//! gracefully on.
//!
//! - **Hot key**: every transaction reads and writes the same key, so
//!   the conflict graph is one connected component — a single chain in
//!   block order, i.e. fully sequential. Parallel finalize must match
//!   the sequential reference byte for byte *and* do the work in one
//!   chain (no false parallelism on dependent transactions).
//! - **Disjoint keys**: no two transactions share a key, so every
//!   transaction is its own singleton chain — fully parallel. Again the
//!   ledger must be byte-identical for every worker count.
//!
//! The randomized complement — 100 seeded fault schedules across the
//! gossip and Raft layers — lives in
//! `crates/gossip/tests/dissemination.rs` and
//! `crates/ordering/tests/pipeline_equivalence.rs` (those layers sit
//! above this crate in the dependency order).

use fabriccrdt_crypto::{Identity, KeyPair};
use fabriccrdt_fabric::conflict_chains;
use fabriccrdt_fabric::peer::{Peer, PeerSnapshot};
use fabriccrdt_fabric::pipeline::ValidationPipeline;
use fabriccrdt_fabric::policy::EndorsementPolicy;
use fabriccrdt_fabric::validator::FabricValidator;
use fabriccrdt_ledger::block::{Block, ValidationCode};
use fabriccrdt_ledger::rwset::ReadWriteSet;
use fabriccrdt_ledger::transaction::{Endorsement, Transaction, TxId};
use fabriccrdt_ledger::version::Height;

fn policy() -> EndorsementPolicy {
    EndorsementPolicy::all_of(vec!["org1".to_string()])
}

/// A fully endorsed read-modify-write transaction on `key`. The read
/// records the pre-block version the workload generator last observed,
/// so MVCC outcomes depend on commit order — exactly the sensitivity
/// the chain schedule must preserve.
fn rmw_tx(nonce: u64, key: &str, read_version: Option<Height>) -> Transaction {
    let client = Identity::new("client", "org1");
    let mut rwset = ReadWriteSet::new();
    rwset.reads.record(key, read_version);
    rwset
        .writes
        .put(key.to_string(), format!("v{nonce}").into_bytes());
    let mut tx = Transaction {
        id: TxId::derive(&client, nonce, "cc"),
        client,
        chaincode: "cc".into(),
        rwset,
        endorsements: Vec::new(),
    };
    let peer = KeyPair::derive(Identity::new("peer0", "org1"));
    tx.endorsements.push(Endorsement {
        endorser: peer.identity().clone(),
        signature: peer.sign(&tx.response_payload()),
    });
    tx
}

/// Replays `blocks` through a fresh peer, returning the snapshot plus
/// every block's validation codes.
fn replay(
    pipeline: ValidationPipeline,
    blocks: &[Block],
) -> (PeerSnapshot, Vec<Vec<ValidationCode>>) {
    let mut peer = Peer::new(FabricValidator::new(), policy()).with_pipeline(pipeline);
    peer.seed_state("hot", b"0".to_vec());
    let mut codes = Vec::new();
    for block in blocks {
        let staged = peer.process_block(block.clone());
        codes.push(staged.block.validation_codes.clone());
        peer.commit(staged).expect("blocks arrive in chain order");
    }
    (peer.snapshot(), codes)
}

fn assert_parallel_matches_sequential(blocks: &[Block]) {
    let (seq_snapshot, seq_codes) = replay(ValidationPipeline::Sequential, blocks);
    for workers in 2..=8 {
        let (snapshot, codes) = replay(ValidationPipeline::parallel(workers), blocks);
        assert_eq!(
            snapshot.state, seq_snapshot.state,
            "{workers} workers: world state diverged"
        );
        assert_eq!(
            snapshot.chain, seq_snapshot.chain,
            "{workers} workers: chain diverged"
        );
        assert_eq!(codes, seq_codes, "{workers} workers: codes diverged");
    }
}

/// Every transaction touches the one hot key: the schedule degenerates
/// to a single chain in block order, and first-writer-wins MVCC (only
/// the first toucher of the key commits per block; later reads are
/// stale) is preserved under every worker count.
#[test]
fn hot_key_degenerates_to_one_sequential_chain() {
    let blocks: Vec<Block> = (1..=4u64)
        .map(|number| {
            let txs: Vec<Transaction> = (0..6)
                .map(|i| rmw_tx(number * 10 + i, "hot", Some(Height::new(0, 0))))
                .collect();
            Block::assemble(number, [0; 32], txs)
        })
        .collect();

    for block in &blocks {
        let chains = conflict_chains(&block.transactions, &vec![None; block.transactions.len()]);
        assert_eq!(chains.len(), 1, "hot-key block must form one chain");
        assert_eq!(
            chains[0],
            (0..block.transactions.len()).collect::<Vec<_>>(),
            "the chain must ascend in block order"
        );
    }
    assert_parallel_matches_sequential(&blocks);
}

/// Every transaction touches its own key: the schedule produces one
/// singleton chain per transaction (maximum parallelism) and the
/// ledger stays byte-identical.
#[test]
fn disjoint_keys_form_singleton_chains() {
    let mut nonce = 0u64;
    let blocks: Vec<Block> = (1..=4u64)
        .map(|number| {
            let txs: Vec<Transaction> = (0..8)
                .map(|_| {
                    nonce += 1;
                    rmw_tx(nonce, &format!("k{nonce}"), None)
                })
                .collect();
            Block::assemble(number, [0; 32], txs)
        })
        .collect();

    for block in &blocks {
        let chains = conflict_chains(&block.transactions, &vec![None; block.transactions.len()]);
        assert_eq!(
            chains.len(),
            block.transactions.len(),
            "disjoint keys must form singleton chains"
        );
        for (i, chain) in chains.iter().enumerate() {
            assert_eq!(chain, &vec![i], "chains are sorted by first member");
        }
    }
    assert_parallel_matches_sequential(&blocks);
}

/// A mixed block — one hot chain plus disjoint singletons — keeps both
/// properties at once, including pre-decided transactions (policy
/// failures) being excluded from every chain.
#[test]
fn mixed_block_partitions_into_hot_chain_plus_singletons() {
    let mut txs: Vec<Transaction> = Vec::new();
    for i in 0..3 {
        txs.push(rmw_tx(100 + i, "hot", Some(Height::new(0, 0))));
        txs.push(rmw_tx(200 + i, &format!("solo{i}"), None));
    }
    // A policy failure: pre-decided, so the scheduler must skip it.
    let mut bad = rmw_tx(300, "hot", Some(Height::new(0, 0)));
    bad.endorsements[0].signature.0[0] ^= 0xFF;
    txs.push(bad);

    let mut pre = vec![None; txs.len()];
    pre[6] = Some(ValidationCode::EndorsementPolicyFailure);
    let chains = conflict_chains(&txs, &pre);
    // Hot chain {0, 2, 4} plus three singletons, bad tx in none.
    assert_eq!(chains.len(), 4);
    assert_eq!(chains[0], vec![0, 2, 4]);
    assert!(chains.iter().all(|c| !c.contains(&6)));

    let blocks = vec![Block::assemble(1, [0; 32], txs)];
    assert_parallel_matches_sequential(&blocks);
}
