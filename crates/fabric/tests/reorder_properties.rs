//! Randomized property tests for `fabriccrdt_fabric::reorder::reorder_batch`,
//! driven by the deterministic in-repo generator (`fabriccrdt_sim::gen`):
//!
//! 1. the emitted order is a valid topological order of the conflict
//!    graph restricted to survivors (every surviving reader of a key
//!    precedes every other surviving writer of that key),
//! 2. reordering is deterministic across runs,
//! 3. every early-aborted transaction sits on a non-trivial strongly
//!    connected component of the conflict graph (verified against an
//!    independent Kosaraju SCC computed here), and
//! 4. an acyclic batch loses zero transactions.

use std::collections::{BTreeMap, BTreeSet};

use fabriccrdt_crypto::Identity;
use fabriccrdt_fabric::reorder::reorder_batch;
use fabriccrdt_ledger::rwset::ReadWriteSet;
use fabriccrdt_ledger::transaction::{Transaction, TxId};
use fabriccrdt_ledger::version::Height;
use fabriccrdt_sim::gen;

fn tx(nonce: u64, reads: &[String], writes: &[String]) -> Transaction {
    let client = Identity::new("client", "org1");
    let mut rwset = ReadWriteSet::new();
    for key in reads {
        rwset.reads.record(key.clone(), Some(Height::new(1, 0)));
    }
    for key in writes {
        rwset.writes.put(key.clone(), vec![nonce as u8]);
    }
    Transaction {
        id: TxId::derive(&client, nonce, "cc"),
        client,
        chaincode: "cc".into(),
        rwset,
        endorsements: Vec::new(),
    }
}

/// A random batch over a deliberately small key pool, so read/write
/// collisions — and therefore conflict cycles — are common.
fn random_batch(g: &mut gen::Gen) -> Vec<Transaction> {
    let n = g.size(2, 32);
    let pool: Vec<String> = (0..g.size(1, 8)).map(|k| format!("k{k}")).collect();
    (0..n as u64)
        .map(|nonce| {
            let mut reads: BTreeSet<String> = BTreeSet::new();
            for _ in 0..g.size(0, 2) {
                reads.insert(g.pick(&pool).clone());
            }
            let mut writes: BTreeSet<String> = BTreeSet::new();
            for _ in 0..g.size(1, 2) {
                writes.insert(g.pick(&pool).clone());
            }
            // Read-modify-writes (the conflict-clique makers) with
            // coin-flip probability.
            if g.flip() {
                if let Some(k) = writes.iter().next().cloned() {
                    reads.insert(k);
                }
            }
            let reads: Vec<String> = reads.into_iter().collect();
            let writes: Vec<String> = writes.into_iter().collect();
            tx(nonce, &reads, &writes)
        })
        .collect()
}

/// Conflict-graph edges, reader → writer, matching the documented
/// contract: a transaction reading key `k` must precede every *other*
/// transaction writing `k`.
fn conflict_edges(batch: &[Transaction]) -> Vec<BTreeSet<usize>> {
    let mut writers: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, t) in batch.iter().enumerate() {
        for (key, _) in t.rwset.writes.iter() {
            writers.entry(key).or_default().push(i);
        }
    }
    let mut successors = vec![BTreeSet::new(); batch.len()];
    for (r, t) in batch.iter().enumerate() {
        for (key, _) in t.rwset.reads.iter() {
            for &w in writers.get(key as &str).map_or(&[][..], Vec::as_slice) {
                if r != w {
                    successors[r].insert(w);
                }
            }
        }
    }
    successors
}

/// Independent SCC computation (Kosaraju, iterative) — deliberately a
/// different algorithm from the Tarjan inside `reorder_batch`.
fn kosaraju_scc(successors: &[BTreeSet<usize>]) -> Vec<Vec<usize>> {
    let n = successors.len();
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    for root in 0..n {
        if visited[root] {
            continue;
        }
        let mut stack = vec![(root, successors[root].iter())];
        visited[root] = true;
        while let Some((node, iter)) = stack.last_mut() {
            match iter.next() {
                Some(&next) if !visited[next] => {
                    visited[next] = true;
                    stack.push((next, successors[next].iter()));
                }
                Some(_) => {}
                None => {
                    order.push(*node);
                    stack.pop();
                }
            }
        }
    }
    let mut reversed = vec![BTreeSet::new(); n];
    for (from, succs) in successors.iter().enumerate() {
        for &to in succs {
            reversed[to].insert(from);
        }
    }
    let mut component = vec![usize::MAX; n];
    let mut components: Vec<Vec<usize>> = Vec::new();
    for &root in order.iter().rev() {
        if component[root] != usize::MAX {
            continue;
        }
        let id = components.len();
        let mut members = vec![root];
        component[root] = id;
        let mut stack = vec![root];
        while let Some(node) = stack.pop() {
            for &next in &reversed[node] {
                if component[next] == usize::MAX {
                    component[next] = id;
                    members.push(next);
                    stack.push(next);
                }
            }
        }
        components.push(members);
    }
    components
}

fn ids(txs: &[Transaction]) -> Vec<TxId> {
    txs.iter().map(|t| t.id).collect()
}

/// Properties 1–3 on randomly generated (frequently cyclic) batches.
#[test]
fn reorder_batch_properties_hold_on_random_batches() {
    gen::cases(256, |g| {
        let batch = random_batch(g);
        let index_of: BTreeMap<TxId, usize> =
            batch.iter().enumerate().map(|(i, t)| (t.id, i)).collect();
        let successors = conflict_edges(&batch);
        let sccs = kosaraju_scc(&successors);
        let nontrivial: BTreeSet<usize> = sccs
            .iter()
            .filter(|c| c.len() > 1)
            .flat_map(|c| c.iter().copied())
            .collect();

        let outcome = reorder_batch(batch.clone());

        // Conservation: survivors + aborts partition the input.
        let mut seen: BTreeSet<TxId> = BTreeSet::new();
        for t in outcome.ordered.iter().chain(&outcome.aborted) {
            assert!(seen.insert(t.id), "transaction emitted twice: {:?}", t.id);
        }
        assert_eq!(seen.len(), batch.len(), "transactions lost");

        // Property 3: every aborted transaction sits on a non-trivial
        // SCC, and enough of each non-trivial SCC is aborted to break
        // it (all but one member).
        for t in &outcome.aborted {
            assert!(
                nontrivial.contains(&index_of[&t.id]),
                "aborted a transaction outside every conflict cycle"
            );
        }
        for component in sccs.iter().filter(|c| c.len() > 1) {
            let survivors = outcome
                .ordered
                .iter()
                .filter(|t| component.contains(&index_of[&t.id]))
                .count();
            assert_eq!(
                survivors, 1,
                "a non-trivial SCC must keep exactly one representative"
            );
        }

        // Property 4 (corollary): an acyclic batch loses nothing.
        if nontrivial.is_empty() {
            assert!(
                outcome.aborted.is_empty(),
                "acyclic batch lost transactions"
            );
        }

        // Property 1: the emitted order is a topological order of the
        // survivor subgraph — every surviving reader of a key precedes
        // every other surviving writer of that key.
        let position: BTreeMap<TxId, usize> = outcome
            .ordered
            .iter()
            .enumerate()
            .map(|(pos, t)| (t.id, pos))
            .collect();
        for (from, succs) in successors.iter().enumerate() {
            let Some(&from_pos) = position.get(&batch[from].id) else {
                continue; // aborted
            };
            for &to in succs {
                if let Some(&to_pos) = position.get(&batch[to].id) {
                    assert!(
                        from_pos < to_pos,
                        "reader at output position {from_pos} follows a writer \
                         of one of its read keys at {to_pos}"
                    );
                }
            }
        }

        // Property 2: byte-for-byte determinism.
        let again = reorder_batch(batch);
        assert_eq!(ids(&outcome.ordered), ids(&again.ordered));
        assert_eq!(ids(&outcome.aborted), ids(&again.aborted));
    });
}

/// Property 4, directed: batches that are acyclic *by construction*
/// (transaction `i` only reads keys written by higher-indexed
/// transactions, so all conflict edges point forward) never lose a
/// transaction, at any size.
#[test]
fn acyclic_batches_lose_nothing() {
    gen::cases(128, |g| {
        let n = g.size(1, 24);
        let batch: Vec<Transaction> = (0..n)
            .map(|i| {
                let mut reads = Vec::new();
                for _ in 0..g.size(0, 2) {
                    if i + 1 < n {
                        reads.push(format!("k{}", g.range(i as u64 + 1, n as u64)));
                    }
                }
                tx(i as u64, &reads, std::slice::from_ref(&format!("k{i}")))
            })
            .collect();
        let expected = ids(&batch);
        let outcome = reorder_batch(batch);
        assert!(
            outcome.aborted.is_empty(),
            "acyclic batch lost transactions"
        );
        let mut emitted = ids(&outcome.ordered);
        emitted.sort();
        let mut expected = expected;
        expected.sort();
        assert_eq!(emitted, expected);
    });
}
