//! Pluggable commit-path validation pipeline.
//!
//! The committing peer's pre-validation stage — endorsement-policy
//! evaluation, signature verification, CRDT payload decoding — is
//! per-transaction independent: no step reads the world state or any
//! other transaction's outcome (duplicate-id detection, the one
//! cross-transaction check, runs *before* this stage). That makes the
//! stage embarrassingly parallel, and both Javaid et al. (*Optimizing
//! Validation Phase of Hyperledger Fabric*) and Wang & Chu's bottleneck
//! study identify it as the dominant commit-path cost.
//!
//! [`ValidationPipeline`] is the seam, mirroring the
//! [`DeliveryLayer`](crate::simulation::DeliveryLayer) /
//! [`OrderingBackend`](crate::simulation::OrderingBackend) pattern:
//! the default [`ValidationPipeline::Sequential`] reproduces the seed
//! commit path instruction-for-instruction, while
//! [`ValidationPipeline::Parallel`] fans the same per-transaction
//! closure out over `std::thread::scope` workers.
//!
//! # Determinism argument
//!
//! Parallelism must not perturb the simulation's bit-for-bit
//! reproducibility. Two properties guarantee it:
//!
//! 1. **Purity** — the mapped closure is a pure function of the
//!    transaction (plus shared read-only context); it never observes
//!    scheduling order, so each per-index result is identical no matter
//!    which worker computes it or when.
//! 2. **Ordered join** — workers tag every result with its transaction
//!    index and [`ValidationPipeline::map_ordered`] reassembles the
//!    output vector in index order, so downstream consumers (the
//!    sequential MVCC/merge stage, the work counters that drive the
//!    cost model) see exactly the sequence a sequential map would have
//!    produced.
//!
//! Hence `Parallel { workers }` is value-identical to `Sequential` for
//! every `workers >= 1` — asserted by the 50-seed sweep in
//! `crates/fabric/tests/parallel_validation.rs` — and only the
//! *wall-clock* time of `process_block` changes.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Strategy for the per-transaction pre-validation stage of
/// [`Peer::process_block`](crate::peer::Peer::process_block).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ValidationPipeline {
    /// Validate transactions one after another on the calling thread —
    /// byte-for-byte the seed behaviour.
    #[default]
    Sequential,
    /// Fan transactions out over `workers` scoped threads; results are
    /// joined in block order (see the module-level determinism
    /// argument). `workers == 1` still runs on the calling thread.
    Parallel {
        /// Number of worker threads to spawn (clamped to at least 1).
        workers: usize,
    },
}

impl ValidationPipeline {
    /// A parallel pipeline with `workers` threads (at least 1).
    pub fn parallel(workers: usize) -> Self {
        ValidationPipeline::Parallel {
            workers: workers.max(1),
        }
    }

    /// Worker threads this pipeline would use for `items` work items.
    pub fn effective_workers(&self, items: usize) -> usize {
        match *self {
            ValidationPipeline::Sequential => 1,
            ValidationPipeline::Parallel { workers } => workers.max(1).min(items.max(1)),
        }
    }

    /// Short name for reports ("sequential", "parallel(4)").
    pub fn label(&self) -> String {
        match *self {
            ValidationPipeline::Sequential => "sequential".to_string(),
            ValidationPipeline::Parallel { workers } => format!("parallel({workers})"),
        }
    }

    /// Maps `f` over `items`, returning results in item order.
    ///
    /// `f(i, &items[i])` must be pure per item — it may read shared
    /// context but must not depend on evaluation order. `Sequential`
    /// (and `Parallel` with one effective worker) evaluates left to
    /// right on the calling thread, exactly like `iter().map()`;
    /// `Parallel` spawns scoped workers that pull indices from a shared
    /// atomic cursor and tags each result with its index, so the joined
    /// vector is independent of thread scheduling.
    ///
    /// # Panics
    ///
    /// Propagates a panic from `f` (workers rejoin before the scope
    /// exits, so a panicking closure aborts the whole map).
    pub fn map_ordered<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        let workers = self.effective_workers(items.len());
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<U>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(item) = items.get(i) else { break };
                            local.push((i, f(i, item)));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                for (i, result) in handle.join().expect("validation worker panicked") {
                    slots[i] = Some(result);
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every index mapped exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_matches_plain_map() {
        let items: Vec<u64> = (0..17).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        let got = ValidationPipeline::Sequential.map_ordered(&items, |_, x| x * x);
        assert_eq!(got, expect);
    }

    #[test]
    fn parallel_preserves_order_for_every_worker_count() {
        let items: Vec<u64> = (0..101).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for workers in 1..=8 {
            let got = ValidationPipeline::parallel(workers).map_ordered(&items, |_, x| x * 3 + 1);
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn parallel_handles_empty_and_single_item() {
        let empty: Vec<u64> = Vec::new();
        assert!(ValidationPipeline::parallel(4)
            .map_ordered(&empty, |_, x| *x)
            .is_empty());
        assert_eq!(
            ValidationPipeline::parallel(4).map_ordered(&[7u64], |_, x| *x),
            vec![7]
        );
    }

    #[test]
    fn index_argument_matches_position() {
        let items = vec!["a", "b", "c", "d"];
        let got = ValidationPipeline::parallel(3).map_ordered(&items, |i, s| format!("{i}{s}"));
        assert_eq!(got, vec!["0a", "1b", "2c", "3d"]);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(ValidationPipeline::parallel(0).effective_workers(10), 1);
        assert_eq!(
            ValidationPipeline::parallel(0).map_ordered(&[1u8, 2], |_, x| *x),
            vec![1, 2]
        );
    }

    #[test]
    fn labels() {
        assert_eq!(ValidationPipeline::Sequential.label(), "sequential");
        assert_eq!(ValidationPipeline::parallel(4).label(), "parallel(4)");
        assert_eq!(
            ValidationPipeline::default(),
            ValidationPipeline::Sequential
        );
    }
}
