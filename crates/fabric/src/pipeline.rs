//! Pluggable commit-path validation pipeline.
//!
//! The committing peer's pre-validation stage — endorsement-policy
//! evaluation, signature verification, CRDT payload decoding — is
//! per-transaction independent: no step reads the world state or any
//! other transaction's outcome (duplicate-id detection, the one
//! cross-transaction check, runs *before* this stage). That makes the
//! stage embarrassingly parallel, and both Javaid et al. (*Optimizing
//! Validation Phase of Hyperledger Fabric*) and Wang & Chu's bottleneck
//! study identify it as a dominant commit-path cost. The finalize
//! stage (MVCC + CRDT merge) is parallelized too, but by conflict
//! chains rather than per transaction — see [`crate::schedule`].
//!
//! [`ValidationPipeline`] is the configuration seam, mirroring the
//! [`DeliveryLayer`](crate::simulation::DeliveryLayer) /
//! [`OrderingBackend`](crate::simulation::OrderingBackend) pattern:
//! the default [`ValidationPipeline::Sequential`] reproduces the seed
//! commit path instruction-for-instruction, while
//! [`ValidationPipeline::Parallel`] fans the same per-item closure out
//! over a persistent [`WorkerPool`] (threads spawned once per peer, not
//! once per block — the per-block `std::thread::scope` of the first
//! parallel pipeline cost 15–20% at small document sizes).
//! [`PipelineRunner`] binds the configuration to its pool.
//!
//! # Determinism argument
//!
//! Parallelism must not perturb the simulation's bit-for-bit
//! reproducibility. Two properties guarantee it:
//!
//! 1. **Purity** — the mapped closure is a pure function of the
//!    item (plus shared read-only context); it never observes
//!    scheduling order, so each per-index result is identical no matter
//!    which worker computes it or when.
//! 2. **Ordered join** — every result lands in its index's slot and
//!    [`PipelineRunner::map_ordered`] reassembles the output vector in
//!    index order, so downstream consumers (the conflict-chain finalize
//!    stage, the work counters that drive the cost model) see exactly
//!    the sequence a sequential map would have produced.
//!
//! Hence `Parallel { workers }` is value-identical to `Sequential` for
//! every `workers >= 1` — asserted by the seed sweeps in
//! `crates/fabric/tests/parallel_validation.rs` and
//! `crates/fabric/tests/finalize_schedule.rs` — and only the
//! *wall-clock* time of `process_block` changes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use crate::pool::{BatchTicket, WorkerPool};

/// Strategy for the parallelizable stages of
/// [`Peer::process_block`](crate::peer::Peer::process_block).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ValidationPipeline {
    /// Validate transactions one after another on the calling thread —
    /// byte-for-byte the seed behaviour.
    #[default]
    Sequential,
    /// Fan work out over a persistent pool of `workers` threads;
    /// results are joined in item order (see the module-level
    /// determinism argument). `workers == 1` still runs on the calling
    /// thread.
    Parallel {
        /// Total worker parallelism (clamped to at least 1).
        workers: usize,
    },
    /// Everything `Parallel` does, plus *cross-block* overlap: the
    /// pure pre-validation stage of block N+1 may be submitted to the
    /// pool asynchronously ([`PipelineRunner::map_ordered_bg`]) while
    /// block N's finalize runs on the calling thread. Reads during the
    /// overlapped stage go through the peer's immutable `Arc` state
    /// epoch (see [`crate::peer::Peer::state`]), never a lock; the MVCC
    /// recheck at finalize catches any read that raced a commit.
    /// Value-identical to `Sequential` — only wall-clock changes.
    Pipelined {
        /// Total worker parallelism (clamped to at least 1).
        workers: usize,
    },
}

impl ValidationPipeline {
    /// A parallel pipeline with `workers` threads (at least 1).
    pub fn parallel(workers: usize) -> Self {
        ValidationPipeline::Parallel {
            workers: workers.max(1),
        }
    }

    /// A cross-block pipelined pipeline with `workers` threads (at
    /// least 1).
    pub fn pipelined(workers: usize) -> Self {
        ValidationPipeline::Pipelined {
            workers: workers.max(1),
        }
    }

    /// Whether this mode overlaps pre-validation of the next block
    /// with finalize of the current one.
    pub fn is_pipelined(&self) -> bool {
        matches!(self, ValidationPipeline::Pipelined { .. })
    }

    /// Configured worker-thread count (1 for sequential).
    pub fn workers(&self) -> usize {
        match *self {
            ValidationPipeline::Sequential => 1,
            ValidationPipeline::Parallel { workers }
            | ValidationPipeline::Pipelined { workers } => workers.max(1),
        }
    }

    /// Worker threads this pipeline would use for `items` work items.
    pub fn effective_workers(&self, items: usize) -> usize {
        match *self {
            ValidationPipeline::Sequential => 1,
            ValidationPipeline::Parallel { workers }
            | ValidationPipeline::Pipelined { workers } => workers.max(1).min(items.max(1)),
        }
    }

    /// Short name for reports ("sequential", "parallel(4)",
    /// "pipelined(4)").
    pub fn label(&self) -> String {
        match *self {
            ValidationPipeline::Sequential => "sequential".to_string(),
            ValidationPipeline::Parallel { workers } => format!("parallel({workers})"),
            ValidationPipeline::Pipelined { workers } => format!("pipelined({workers})"),
        }
    }
}

/// A [`ValidationPipeline`] bound to its (lazily spawned) persistent
/// [`WorkerPool`]. One runner lives per [`Peer`](crate::peer::Peer);
/// `Sequential` and single-worker runners never spawn threads.
#[derive(Debug)]
pub struct PipelineRunner {
    mode: ValidationPipeline,
    pool: Option<WorkerPool>,
    /// Whether a background batch ([`PipelineRunner::map_ordered_bg`])
    /// currently owns the pool. While set, synchronous maps evaluate
    /// on the calling thread (value-identical by purity + ordered
    /// join) instead of contending for the pool.
    busy: AtomicBool,
}

/// An in-flight ordered map started by
/// [`PipelineRunner::map_ordered_bg`]. Redeem with
/// [`PipelineRunner::join`] to get the results in item order.
///
/// Two shapes, indistinguishable by value:
///
/// - `Pool`: the batch was submitted to the worker pool and is being
///   computed concurrently with whatever the caller does next.
/// - `Deferred`: the pool was unavailable (no pool spawned on this
///   hardware, a background batch already in flight, or ≤1 item); the
///   map is captured as a closure and evaluated at join time on the
///   calling thread. This keeps single-threaded machines and deep
///   pipelines on exactly the same code path, just without wall-clock
///   overlap.
#[must_use = "a background map must be joined"]
pub struct PendingMap<U> {
    inner: PendingInner<U>,
}

enum PendingInner<U> {
    Pool {
        slots: Arc<Vec<OnceLock<U>>>,
        ticket: BatchTicket,
    },
    Deferred(Box<dyn FnOnce() -> Vec<U> + Send>),
}

impl<U> std::fmt::Debug for PendingMap<U> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.inner {
            PendingInner::Pool { .. } => "Pool",
            PendingInner::Deferred(_) => "Deferred",
        };
        f.debug_struct("PendingMap").field("kind", &kind).finish()
    }
}

impl<U> PendingMap<U> {
    /// Whether the map is actually running on the pool right now (as
    /// opposed to deferred to join time).
    pub fn is_concurrent(&self) -> bool {
        matches!(self.inner, PendingInner::Pool { .. })
    }
}

impl PipelineRunner {
    /// Builds a runner for `mode`, spawning the worker pool up front
    /// when `mode` asks for real parallelism. Spawned threads are
    /// clamped to the machine's `available_parallelism`: threads beyond
    /// the hardware can only add context-switch overhead, never
    /// speedup, and results are thread-count-independent by the
    /// determinism argument above — so on a single-core machine
    /// `Parallel {{ workers: N }}` runs on the calling thread while
    /// still taking the parallel (conflict-chain) code path.
    pub fn new(mode: ValidationPipeline) -> Self {
        let pool = match mode {
            ValidationPipeline::Parallel { workers }
            | ValidationPipeline::Pipelined { workers }
                if workers >= 2 =>
            {
                let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());
                let spawn = workers.min(hardware);
                (spawn >= 2).then(|| WorkerPool::new(spawn))
            }
            _ => None,
        };
        PipelineRunner {
            mode,
            pool,
            busy: AtomicBool::new(false),
        }
    }

    /// The configuration this runner executes.
    pub fn mode(&self) -> ValidationPipeline {
        self.mode
    }

    /// Whether this runner actually executes work concurrently (a pool
    /// was spawned — i.e. `mode` asked for ≥2 workers *and* the machine
    /// has ≥2 hardware threads).
    pub fn is_parallel(&self) -> bool {
        self.pool.is_some()
    }

    /// Whether the finalize stage should use the conflict-chain
    /// schedule. Keyed on the *configuration*, not the spawned pool, so
    /// the chain-partitioned path (and its byte-identity machinery) is
    /// exercised even on machines where the pool is clamped to the
    /// calling thread.
    pub fn parallel_finalize(&self) -> bool {
        matches!(
            self.mode,
            ValidationPipeline::Parallel { workers } | ValidationPipeline::Pipelined { workers }
                if workers >= 2
        )
    }

    /// Whether this runner overlaps blocks (see
    /// [`ValidationPipeline::Pipelined`]).
    pub fn is_pipelined(&self) -> bool {
        self.mode.is_pipelined()
    }

    /// Maps `f` over `items`, returning results in item order.
    ///
    /// `f(i, &items[i])` must be pure per item — it may read shared
    /// context but must not depend on evaluation order. Sequential
    /// runners evaluate left to right on the calling thread, exactly
    /// like `iter().map()`; parallel runners dispatch to the pool,
    /// workers pull indices from a shared cursor, and each result lands
    /// in its index's slot, so the joined vector is independent of
    /// thread scheduling.
    ///
    /// `items` is taken by `Arc` because pool workers are `'static`;
    /// the caller keeps its reference and no item is ever cloned.
    ///
    /// # Panics
    ///
    /// Propagates a panic from `f` (the batch drains first, so the pool
    /// survives).
    pub fn map_ordered<T, U, F>(&self, items: &Arc<Vec<T>>, f: F) -> Vec<U>
    where
        T: Send + Sync + 'static,
        U: Send + Sync + 'static,
        F: Fn(usize, &T) -> U + Send + Sync + 'static,
    {
        let Some(pool) = &self.pool else {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        };
        // A background batch owns the pool (the pipelined overlap
        // window): evaluate locally rather than corrupt the in-flight
        // batch. Purity + ordered join make this value-identical.
        if items.len() <= 1 || self.busy.load(Ordering::Acquire) {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let slots: Arc<Vec<OnceLock<U>>> =
            Arc::new((0..items.len()).map(|_| OnceLock::new()).collect());
        let job_items = items.clone();
        let job_slots = slots.clone();
        pool.run(
            items.len(),
            Arc::new(move |i| {
                let result = f(i, &job_items[i]);
                if job_slots[i].set(result).is_err() {
                    unreachable!("index {i} mapped twice");
                }
            }),
        );
        Arc::try_unwrap(slots)
            .unwrap_or_else(|_| unreachable!("pool released its job clones"))
            .into_iter()
            .map(|slot| slot.into_inner().expect("every index mapped exactly once"))
            .collect()
    }

    /// Starts mapping `f` over `items` *in the background* and returns
    /// a [`PendingMap`] to redeem later with [`PipelineRunner::join`].
    ///
    /// Same purity contract as [`PipelineRunner::map_ordered`], and the
    /// joined result is byte-identical to what `map_ordered` would have
    /// returned — whether the batch actually ran concurrently on the
    /// pool or was deferred to join time (no pool on this hardware,
    /// pool already busy, or ≤1 item). Only one background batch may
    /// own the pool at a time; a second one is deferred.
    pub fn map_ordered_bg<T, U, F>(&self, items: &Arc<Vec<T>>, f: F) -> PendingMap<U>
    where
        T: Send + Sync + 'static,
        U: Send + Sync + 'static,
        F: Fn(usize, &T) -> U + Send + Sync + 'static,
    {
        let can_pool = self.pool.is_some()
            && items.len() > 1
            && self
                .busy
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok();
        if !can_pool {
            let items = items.clone();
            return PendingMap {
                inner: PendingInner::Deferred(Box::new(move || {
                    items.iter().enumerate().map(|(i, t)| f(i, t)).collect()
                })),
            };
        }
        let pool = self.pool.as_ref().expect("checked above");
        let slots: Arc<Vec<OnceLock<U>>> =
            Arc::new((0..items.len()).map(|_| OnceLock::new()).collect());
        let job_items = items.clone();
        let job_slots = slots.clone();
        let ticket = pool.submit(
            items.len(),
            Arc::new(move |i| {
                let result = f(i, &job_items[i]);
                if job_slots[i].set(result).is_err() {
                    unreachable!("index {i} mapped twice");
                }
            }),
        );
        PendingMap {
            inner: PendingInner::Pool { slots, ticket },
        }
    }

    /// Joins a [`PendingMap`], returning results in item order.
    ///
    /// # Panics
    ///
    /// Propagates a panic from the mapped closure, exactly like
    /// [`PipelineRunner::map_ordered`].
    pub fn join<U>(&self, pending: PendingMap<U>) -> Vec<U>
    where
        U: Send + Sync + 'static,
    {
        match pending.inner {
            PendingInner::Deferred(eval) => eval(),
            PendingInner::Pool { slots, ticket } => {
                let pool = self.pool.as_ref().expect("pool batches need a pool");
                // Release the pool even if the batch panicked, so the
                // runner survives (matching the pool's panic policy).
                let waited = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    pool.wait(ticket);
                }));
                self.busy.store(false, Ordering::Release);
                if let Err(payload) = waited {
                    std::panic::resume_unwind(payload);
                }
                Arc::try_unwrap(slots)
                    .unwrap_or_else(|_| unreachable!("pool released its job clones"))
                    .into_iter()
                    .map(|slot| slot.into_inner().expect("every index mapped exactly once"))
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run<T, U, F>(mode: ValidationPipeline, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send + Sync + 'static,
        U: Send + Sync + 'static,
        F: Fn(usize, &T) -> U + Send + Sync + 'static,
    {
        PipelineRunner::new(mode).map_ordered(&Arc::new(items), f)
    }

    #[test]
    fn sequential_matches_plain_map() {
        let items: Vec<u64> = (0..17).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        let got = run(ValidationPipeline::Sequential, items, |_, x| x * x);
        assert_eq!(got, expect);
    }

    #[test]
    fn parallel_preserves_order_for_every_worker_count() {
        let items: Vec<u64> = (0..101).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for workers in 1..=8 {
            let got = run(
                ValidationPipeline::parallel(workers),
                items.clone(),
                |_, x| x * 3 + 1,
            );
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn parallel_handles_empty_and_single_item() {
        let runner = PipelineRunner::new(ValidationPipeline::parallel(4));
        assert!(runner
            .map_ordered(&Arc::new(Vec::<u64>::new()), |_, x| *x)
            .is_empty());
        assert_eq!(
            runner.map_ordered(&Arc::new(vec![7u64]), |_, x| *x),
            vec![7]
        );
    }

    #[test]
    fn index_argument_matches_position() {
        let items = vec!["a", "b", "c", "d"];
        let got = run(ValidationPipeline::parallel(3), items, |i, s| {
            format!("{i}{s}")
        });
        assert_eq!(got, vec!["0a", "1b", "2c", "3d"]);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(ValidationPipeline::parallel(0).effective_workers(10), 1);
        let runner = PipelineRunner::new(ValidationPipeline::parallel(0));
        assert!(!runner.is_parallel());
        assert_eq!(
            runner.map_ordered(&Arc::new(vec![1u8, 2]), |_, x| *x),
            vec![1, 2]
        );
    }

    #[test]
    fn pool_threads_are_clamped_to_hardware() {
        let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());
        let runner = PipelineRunner::new(ValidationPipeline::parallel(8));
        assert_eq!(
            runner.is_parallel(),
            hardware >= 2,
            "a pool is spawned exactly when the machine can run it"
        );
        assert!(runner.parallel_finalize());
        assert!(!PipelineRunner::new(ValidationPipeline::parallel(1)).parallel_finalize());
        assert!(!PipelineRunner::new(ValidationPipeline::Sequential).parallel_finalize());
    }

    #[test]
    fn runner_reuses_one_pool_across_batches() {
        let runner = PipelineRunner::new(ValidationPipeline::parallel(4));
        assert!(runner.parallel_finalize());
        for round in 0..20u64 {
            let items: Vec<u64> = (0..50).collect();
            let got = runner.map_ordered(&Arc::new(items), move |_, x| x + round);
            assert_eq!(got.len(), 50);
            assert_eq!(got[49], 49 + round);
        }
    }

    #[test]
    fn caller_keeps_its_items_reference() {
        let items = Arc::new(vec![1u32, 2, 3]);
        let runner = PipelineRunner::new(ValidationPipeline::parallel(2));
        let got = runner.map_ordered(&items, |_, x| x * 2);
        assert_eq!(got, vec![2, 4, 6]);
        assert_eq!(Arc::strong_count(&items), 1, "job clone released");
    }

    #[test]
    fn background_map_matches_foreground_for_every_worker_count() {
        let items: Vec<u64> = (0..101).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 7 + 2).collect();
        for workers in 1..=8 {
            let runner = PipelineRunner::new(ValidationPipeline::pipelined(workers));
            let pending = runner.map_ordered_bg(&Arc::new(items.clone()), |_, x| x * 7 + 2);
            assert_eq!(runner.join(pending), expect, "workers={workers}");
        }
    }

    #[test]
    fn foreground_map_during_background_batch_evaluates_locally() {
        let runner = PipelineRunner::new(ValidationPipeline::pipelined(4));
        let ahead: Vec<u64> = (0..64).collect();
        let pending = runner.map_ordered_bg(&Arc::new(ahead.clone()), |_, x| x + 1);
        // While the background batch owns the pool, a synchronous map
        // (block N's finalize) must still produce ordered results.
        let now: Vec<u64> = (100..140).collect();
        let got = runner.map_ordered(&Arc::new(now.clone()), |_, x| x * 2);
        assert_eq!(got, now.iter().map(|x| x * 2).collect::<Vec<_>>());
        let joined = runner.join(pending);
        assert_eq!(joined, ahead.iter().map(|x| x + 1).collect::<Vec<_>>());
    }

    #[test]
    fn second_background_batch_is_deferred_not_lost() {
        let runner = PipelineRunner::new(ValidationPipeline::pipelined(4));
        let a = runner.map_ordered_bg(&Arc::new((0..32u64).collect::<Vec<_>>()), |_, x| x + 1);
        let b = runner.map_ordered_bg(&Arc::new((0..16u64).collect::<Vec<_>>()), |_, x| x + 2);
        assert!(
            !b.is_concurrent(),
            "the pool admits one background batch at a time"
        );
        assert_eq!(runner.join(a), (1..33u64).collect::<Vec<_>>());
        assert_eq!(runner.join(b), (2..18u64).collect::<Vec<_>>());
        // With the pool released, background batches pool again (when
        // the hardware spawned one at all).
        let c = runner.map_ordered_bg(&Arc::new((0..8u64).collect::<Vec<_>>()), |_, x| *x);
        assert_eq!(c.is_concurrent(), runner.is_parallel());
        assert_eq!(runner.join(c), (0..8u64).collect::<Vec<_>>());
    }

    #[test]
    fn pipelined_mode_flags() {
        let runner = PipelineRunner::new(ValidationPipeline::pipelined(4));
        assert!(runner.is_pipelined());
        assert!(runner.parallel_finalize());
        assert!(ValidationPipeline::pipelined(0).effective_workers(10) == 1);
        assert!(!PipelineRunner::new(ValidationPipeline::parallel(4)).is_pipelined());
        assert!(!PipelineRunner::new(ValidationPipeline::Sequential).is_pipelined());
    }

    #[test]
    fn labels() {
        assert_eq!(ValidationPipeline::Sequential.label(), "sequential");
        assert_eq!(ValidationPipeline::parallel(4).label(), "parallel(4)");
        assert_eq!(ValidationPipeline::pipelined(4).label(), "pipelined(4)");
        assert_eq!(
            ValidationPipeline::default(),
            ValidationPipeline::Sequential
        );
        assert_eq!(
            PipelineRunner::new(ValidationPipeline::Sequential).mode(),
            ValidationPipeline::Sequential
        );
    }
}
