//! Per-transaction lifecycle records and run-level metrics.
//!
//! Mirrors the quantities Hyperledger Caliper reports and the paper
//! plots: number of successful transactions (panel c of every figure),
//! throughput of successful transactions (panel a), and average latency
//! of successful transactions (panel b).

use fabriccrdt_ledger::block::ValidationCode;
use fabriccrdt_sim::stats::{Summary, TimeBuckets};
use fabriccrdt_sim::time::SimTime;

use crate::channel::ChannelId;

/// A chaincode event from a successfully committed transaction
/// (Fabric's event service delivers events only on commit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommittedEvent {
    /// Index of the originating request in the submission schedule.
    pub request: usize,
    /// Event name (chaincode's `set_event`).
    pub name: String,
    /// Opaque payload.
    pub payload: Vec<u8>,
    /// Commit time.
    pub at: SimTime,
}

/// Lifecycle timestamps of one transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TxRecord {
    /// Client submission time.
    pub submitted_at: SimTime,
    /// Time the transaction's block finished committing, if it got that
    /// far (endorsement failures before ordering never do).
    pub committed_at: Option<SimTime>,
    /// Final validation code.
    pub code: Option<ValidationCode>,
}

impl TxRecord {
    /// Whether the transaction committed successfully.
    pub fn is_success(&self) -> bool {
        self.code.is_some_and(ValidationCode::is_success)
    }

    /// Submit-to-commit latency for successful transactions.
    pub fn latency(&self) -> Option<SimTime> {
        if !self.is_success() {
            return None;
        }
        self.committed_at
            .map(|c| c.saturating_sub(self.submitted_at))
    }
}

/// How a catch-up episode ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CatchUpOutcome {
    /// The peer replayed the missing block suffix block by block
    /// (classic anti-entropy state transfer).
    Replay {
        /// When it reached the height the rest of the network had when
        /// it fell behind (or later, if blocks kept arriving).
        caught_up_at: SimTime,
    },
    /// The peer installed a donor snapshot, then replayed only the
    /// post-snapshot suffix.
    Snapshot {
        /// When it reached the target height.
        caught_up_at: SimTime,
        /// Bytes of the installed snapshot (also included in the
        /// episode's [`CatchUpEpisode::bytes_shipped`]).
        snapshot_bytes: u64,
    },
    /// The peer crashed again before reaching the target height; the
    /// episode ends at the crash without catching up. Counting these
    /// keeps catch-up statistics honest under repeated crashes.
    Abandoned {
        /// When the peer crashed mid-catch-up.
        at: SimTime,
    },
}

/// One catch-up episode: a peer that fell behind (crash restart or
/// healed partition) and what it took gossip anti-entropy to bring it
/// back to the network's committed height — or the crash that cut the
/// attempt short.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatchUpEpisode {
    /// Flattened peer index.
    pub peer: usize,
    /// When the peer rejoined (restart or heal time).
    pub from: SimTime,
    /// Total bytes shipped to the peer during the episode (snapshot +
    /// block transfer payloads).
    pub bytes_shipped: u64,
    /// How the episode ended.
    pub outcome: CatchUpOutcome,
}

impl CatchUpEpisode {
    /// When the peer reached the target height, or `None` for an
    /// abandoned episode.
    pub fn completed_at(&self) -> Option<SimTime> {
        match self.outcome {
            CatchUpOutcome::Replay { caught_up_at }
            | CatchUpOutcome::Snapshot { caught_up_at, .. } => Some(caught_up_at),
            CatchUpOutcome::Abandoned { .. } => None,
        }
    }

    /// When the episode ended, whether by catching up or by crashing.
    pub fn ended_at(&self) -> SimTime {
        match self.outcome {
            CatchUpOutcome::Replay { caught_up_at }
            | CatchUpOutcome::Snapshot { caught_up_at, .. } => caught_up_at,
            CatchUpOutcome::Abandoned { at } => at,
        }
    }

    /// Rejoin-to-end duration (for abandoned episodes, rejoin-to-crash).
    pub fn duration(&self) -> SimTime {
        self.ended_at().saturating_sub(self.from)
    }

    /// Whether the episode was cut short by another crash.
    pub fn is_abandoned(&self) -> bool {
        matches!(self.outcome, CatchUpOutcome::Abandoned { .. })
    }

    /// Whether the episode installed a snapshot.
    pub fn used_snapshot(&self) -> bool {
        matches!(self.outcome, CatchUpOutcome::Snapshot { .. })
    }
}

/// Metrics of the block-dissemination (gossip) layer. Only populated
/// when a run uses gossip delivery; ideal FIFO delivery reports `None`
/// in [`RunMetrics::dissemination`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DisseminationMetrics {
    /// Orderer-cut to per-peer block arrival latency, one sample per
    /// `(block, peer)` first delivery.
    pub propagation: Vec<SimTime>,
    /// Gossip push messages put on the wire (including ones later
    /// dropped by fault injection).
    pub messages_sent: u64,
    /// Pushes that arrived at a peer which already had the block — the
    /// inherent redundancy of epidemic dissemination.
    pub redundant_messages: u64,
    /// Messages dropped by link fault injection.
    pub messages_dropped: u64,
    /// Extra copies injected by link duplication faults.
    pub messages_duplicated: u64,
    /// Anti-entropy rounds that actually transferred at least one block.
    pub anti_entropy_transfers: u64,
    /// Blocks shipped by anti-entropy state transfer.
    pub anti_entropy_blocks: u64,
    /// Encoded bytes shipped by anti-entropy block transfers.
    pub anti_entropy_bytes: u64,
    /// Anti-entropy rounds that shipped a snapshot instead of (or in
    /// addition to) a block suffix.
    pub snapshot_transfers: u64,
    /// Encoded bytes of shipped snapshots (and their frontier deltas).
    pub snapshot_bytes: u64,
    /// Catch-up episodes after crashes/partitions, in rejoin order
    /// (abandoned ones included; see [`CatchUpOutcome::Abandoned`]).
    pub catch_up: Vec<CatchUpEpisode>,
}

impl DisseminationMetrics {
    /// Distribution of block propagation latencies (for percentile
    /// reporting).
    pub fn propagation_summary(&self) -> Summary {
        Summary::from_times(&self.propagation)
    }

    /// Redundant-message ratio: fraction of received pushes that the
    /// receiver already had. 0 when nothing was received.
    ///
    /// Drops are subtracted saturating: under heavy loss-fault
    /// schedules a link can drop duplicated copies it never counted as
    /// sent, so `dropped` may exceed `sent + duplicated` — that means
    /// "nothing received", not a u64 underflow.
    pub fn redundancy_ratio(&self) -> f64 {
        let received =
            (self.messages_sent + self.messages_duplicated).saturating_sub(self.messages_dropped);
        if received == 0 {
            return 0.0;
        }
        self.redundant_messages as f64 / received as f64
    }

    /// The longest *completed* catch-up episode, if any peer caught up.
    /// Abandoned episodes are excluded: their duration measures time to
    /// the next crash, not time to catch up.
    pub fn worst_catch_up(&self) -> Option<CatchUpEpisode> {
        self.catch_up
            .iter()
            .filter(|e| !e.is_abandoned())
            .copied()
            .max_by_key(CatchUpEpisode::duration)
    }
}

/// Decode-cache activity attributed to one run: the delta of the
/// process-wide payload cache counters
/// ([`fabriccrdt_jsoncrdt::cache::stats`]) over the run, captured by the
/// simulation for validators that decode CRDT payloads. `None` in
/// [`RunMetrics::decode_cache`] — rendered "n/a", like
/// [`RunMetrics::avg_latency_secs`] — means the validator never touches
/// the cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeCacheMetrics {
    /// Lookups served from the cache during the run.
    pub hits: u64,
    /// Lookups that had to parse during the run.
    pub misses: u64,
    /// Capacity flushes (epoch evictions) during the run.
    pub evictions: u64,
}

impl DecodeCacheMetrics {
    /// Fraction of lookups served from the cache, or `None` when the
    /// run performed no lookups at all.
    pub fn hit_ratio(&self) -> Option<f64> {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            return None;
        }
        Some(self.hits as f64 / lookups as f64)
    }
}

/// Detection counters of the byzantine-adversary screen. Only
/// populated when a run configures an adversary schedule
/// ([`crate::config::AdversaryConfig`]) on a gossip delivery; honest
/// runs report `None` in [`RunMetrics::adversary`].
///
/// Unlike [`RunMetrics::decode_cache`], these counters are part of
/// [`RunMetrics`] equality: detection is deterministic, so equivalent
/// runs must detect identically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdversaryMetrics {
    /// Forged block variants the adversary put on the wire (divergent
    /// equivocation payloads, tampered copies, forged tip hashes).
    pub forged_blocks_injected: u64,
    /// Blocks rejected at ingress because their Merkle data hash did
    /// not cover their transactions (in-flight tampering: flipped
    /// bytes, reordered or duplicated transactions).
    pub tampered_rejected: u64,
    /// Well-formed blocks rejected because their header digest
    /// diverged from the canonical block at the same height (forged
    /// tip hashes, equivocating orderer payloads).
    pub forged_rejected: u64,
    /// Distinct divergent digests observed per height — the
    /// equivocation evidence count. Two conflicting variants at one
    /// height count twice; re-deliveries of a known variant do not.
    pub equivocations_detected: u64,
    /// Peers quarantined for relaying at least one bad block
    /// (currently serving quarantine when the counters were taken;
    /// relays released on probation no longer count).
    pub quarantined_peers: u64,
    /// Messages dropped because their relay was already quarantined.
    pub quarantine_drops: u64,
    /// Relays released from quarantine after serving a full clean
    /// probation window (see `crates/gossip`'s ingress screen) — an
    /// honest-but-once-spoofed relay's pushes count again afterwards.
    pub quarantine_releases: u64,
}

impl AdversaryMetrics {
    /// Total blocks rejected at the adversary screen.
    pub fn rejected_blocks(&self) -> u64 {
        self.tampered_rejected + self.forged_rejected
    }
}

/// Counters of the cross-block commit pipeline
/// ([`crate::pipeline::ValidationPipeline::Pipelined`]). Only
/// populated for pipelined runs; sequential and per-block-parallel
/// runs report `None` in [`RunMetrics::pipelined`].
///
/// Excluded from [`RunMetrics`] equality, like
/// [`RunMetrics::decode_cache`]: the equivalence sweeps compare a
/// sequential run (`pipelined: None`) against a pipelined one
/// (`pipelined: Some(..)`) and assert *outcome* identity — these
/// counters describe how the work was scheduled, not what it decided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineMetrics {
    /// Blocks whose pre-validation was issued ahead of time — i.e.
    /// overlapped with a predecessor's finalize/commit window.
    pub blocks_overlapped: u64,
    /// Blocks that arrived while the pipeline was idle: nothing to
    /// overlap with, so they took the plain two-stage path.
    pub blocks_stalled: u64,
    /// Deepest run-ahead observed (number of blocks pre-validated but
    /// not yet finalized, at its maximum).
    pub max_ahead_depth: u64,
    /// MVCC read versions checked locklessly against the published
    /// state snapshot during overlapped pre-validation.
    pub speculative_reads_checked: u64,
    /// Overlapped transactions whose speculative read verdict was
    /// confirmed by the authoritative MVCC check at finalize.
    pub speculation_confirmed: u64,
    /// Overlapped transactions whose speculative verdict was
    /// overturned at finalize — a read raced a commit between the
    /// snapshot and the finalize epoch, and the recheck caught it.
    pub speculation_overturned: u64,
}

/// Metrics of the replicated (Raft) ordering service. Only populated
/// when a run uses the Raft backend; the default single orderer
/// reports `None` in [`RunMetrics::ordering`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OrderingMetrics {
    /// Elections started (follower→candidate conversions), including
    /// split votes that never won.
    pub elections_started: u64,
    /// Leadership handovers after the first leader was established.
    pub leader_changes: u64,
    /// Highest Raft term any node reached.
    pub final_term: u64,
    /// Per committed block: leader seal → commit-index advancement
    /// covering it (the replication/commit latency).
    pub commit_latency: Vec<SimTime>,
    /// Client submission re-attempts: retry ticks where a pending
    /// transaction was not held by any reachable leader (leaderless
    /// windows, or a batch lost with a deposed/crashed leader).
    pub submission_retries: u64,
    /// Raft messages put on the wire (AppendEntries, votes, responses —
    /// including ones later dropped by fault injection).
    pub messages_sent: u64,
    /// Messages dropped by link fault injection.
    pub messages_dropped: u64,
}

impl OrderingMetrics {
    /// Distribution of block replication/commit latencies (for
    /// percentile reporting).
    pub fn commit_latency_summary(&self) -> Summary {
        Summary::from_times(&self.commit_latency)
    }
}

/// Counters of the conflict-aware ordering policy
/// ([`crate::config::OrderingPolicy`]). Populated whenever the run's
/// effective policy is not FIFO; FIFO runs report `None` in
/// [`RunMetrics::conflict_policy`].
///
/// Deterministic (the policy decisions read only tracker state derived
/// from finalize feedback), so these counters participate in
/// [`RunMetrics`] equality like the adversary counters do.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConflictPolicyMetrics {
    /// Batches that went through the dependency-graph reordering pass.
    pub batches_reordered: u64,
    /// Batches cut FIFO because their measured conflict density stayed
    /// below the adaptive threshold (the skipped Tarjan/Kahn cost).
    pub batches_fifo: u64,
    /// Transactions early-aborted as conflict-cycle members by the
    /// reordering pass.
    pub cycle_aborts: u64,
    /// Transactions early-aborted as predicted-doomed by the conflict
    /// tracker (hot-key read-modify-write duplicates on FIFO-cut
    /// batches).
    pub predicted_aborts: u64,
    /// Keys the conflict tracker held when the run ended.
    pub tracked_keys: u64,
}

impl ConflictPolicyMetrics {
    /// Accumulates another counter set (used by the Raft cluster to
    /// carry counters across leader hand-offs).
    pub fn absorb(&mut self, other: ConflictPolicyMetrics) {
        self.batches_reordered += other.batches_reordered;
        self.batches_fifo += other.batches_fifo;
        self.cycle_aborts += other.cycle_aborts;
        self.predicted_aborts += other.predicted_aborts;
        self.tracked_keys = self.tracked_keys.max(other.tracked_keys);
    }

    /// Total early aborts the ordering policy performed.
    pub fn early_aborts(&self) -> u64 {
        self.cycle_aborts + self.predicted_aborts
    }
}

/// Client-side abort-and-retry accounting (tentpole of the
/// conflict-aware ordering work): what the retry loop cost and what it
/// recovered. Always populated — a run with no retries reports zeros —
/// and part of [`RunMetrics`] equality (fully deterministic).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RetryMetrics {
    /// Resubmissions performed (every retry is a full extra
    /// execute/endorse/order round trip).
    pub retries: u64,
    /// Transactions that eventually committed successfully after at
    /// least one retry.
    pub retry_success: u64,
    /// Submit-to-final-commit latency of each retry success (measured
    /// from the *original* submission, so it includes every backoff).
    pub retry_latency: Vec<SimTime>,
    /// Validation work units the committing peer spent on transactions
    /// whose final verdict was a failure: one unit per endorsement
    /// signature verified plus one per read-set version checked.
    /// Early-aborted transactions contribute nothing — they never
    /// reach validation, which is exactly the point of early abort.
    pub wasted_validation_work: u64,
}

impl RetryMetrics {
    /// Distribution of retry-success latencies (for percentile
    /// reporting).
    pub fn retry_latency_summary(&self) -> Summary {
        Summary::from_times(&self.retry_latency)
    }
}

/// Metrics for one experiment run.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// The channel the run executed on ([`ChannelId::DEFAULT`] for
    /// single-channel runs). Multi-channel rollups
    /// ([`crate::channel::MultiChannelMetrics`]) group per-channel
    /// metrics by this.
    pub channel: ChannelId,
    /// One record per submitted transaction, in submission order.
    pub records: Vec<TxRecord>,
    /// Simulated time when the last block committed.
    pub end_time: SimTime,
    /// Total blocks committed.
    pub blocks_committed: u64,
    /// Client resubmissions performed (only non-zero when
    /// `client_retries > 0` — each one is a full extra
    /// execute/endorse/order round trip, the cost §1 attributes to
    /// Fabric's failure model).
    pub resubmissions: u64,
    /// Chaincode events of successfully committed transactions, in
    /// commit order.
    pub events: Vec<CommittedEvent>,
    /// Gossip-layer metrics when the run used gossip delivery; `None`
    /// under the default ideal FIFO delivery.
    pub dissemination: Option<DisseminationMetrics>,
    /// Ordering-cluster metrics when the run used the Raft backend;
    /// `None` under the default single orderer.
    pub ordering: Option<OrderingMetrics>,
    /// Decode-cache counter deltas over the run; `None` when the
    /// validator never uses the payload cache.
    pub decode_cache: Option<DecodeCacheMetrics>,
    /// Byzantine-screen detection counters when the run configured an
    /// adversary schedule; `None` for honest runs.
    pub adversary: Option<AdversaryMetrics>,
    /// Cross-block pipelining counters when the run used
    /// [`crate::pipeline::ValidationPipeline::Pipelined`]; `None`
    /// otherwise.
    pub pipelined: Option<PipelineMetrics>,
    /// Abort-and-retry loop accounting. All-zero when the run
    /// configured no retry policy and nothing failed.
    pub retry: RetryMetrics,
    /// Ordering-policy counters when the run's effective
    /// [`crate::config::OrderingPolicy`] was not FIFO; `None` for FIFO
    /// runs.
    pub conflict_policy: Option<ConflictPolicyMetrics>,
}

/// Equality deliberately ignores [`RunMetrics::decode_cache`]: the
/// parallel pipeline races pre-validation decodes across pool threads,
/// so hit/miss counters depend on thread scheduling even though every
/// validation outcome stays byte-identical. The equivalence sweeps
/// assert `sequential_metrics == parallel_metrics`, which must hold
/// regardless of that scheduling noise. [`RunMetrics::pipelined`] is
/// ignored for the same reason: it describes the overlap schedule, and
/// the sweeps compare pipelined runs against sequential ones that have
/// no such schedule at all.
impl PartialEq for RunMetrics {
    fn eq(&self, other: &Self) -> bool {
        self.channel == other.channel
            && self.records == other.records
            && self.end_time == other.end_time
            && self.blocks_committed == other.blocks_committed
            && self.resubmissions == other.resubmissions
            && self.events == other.events
            && self.dissemination == other.dissemination
            && self.ordering == other.ordering
            && self.adversary == other.adversary
            && self.retry == other.retry
            && self.conflict_policy == other.conflict_policy
    }
}

impl RunMetrics {
    /// Total submitted transactions.
    pub fn submitted(&self) -> usize {
        self.records.len()
    }

    /// Number of successful transactions (figure panel c).
    pub fn successful(&self) -> usize {
        self.records.iter().filter(|r| r.is_success()).count()
    }

    /// Number of failed transactions (any non-success code, plus
    /// transactions that never committed).
    pub fn failed(&self) -> usize {
        self.submitted() - self.successful()
    }

    /// Failures broken down by validation code.
    pub fn failures_with(&self, code: ValidationCode) -> usize {
        self.records.iter().filter(|r| r.code == Some(code)).count()
    }

    /// Throughput of successful transactions over the whole run
    /// (figure panel a), in transactions per second.
    pub fn successful_throughput_tps(&self) -> f64 {
        let span = self.end_time.as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        self.successful() as f64 / span
    }

    /// Average submit-to-commit latency of successful transactions in
    /// seconds (figure panel b), or `None` when no transaction
    /// succeeded — a run where everything failed has *no* latency, and
    /// reporting it as a perfect 0.0 s corrupted aggregate tables.
    pub fn avg_latency_secs(&self) -> Option<f64> {
        self.latency_summary().mean()
    }

    /// Successful commits per time bucket — the throughput-over-time
    /// series (e.g. one bucket per simulated second).
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero.
    pub fn throughput_series(&self, bucket: SimTime) -> TimeBuckets {
        let mut buckets = TimeBuckets::new(bucket);
        for record in &self.records {
            if record.is_success() {
                if let Some(at) = record.committed_at {
                    buckets.record(at);
                }
            }
        }
        buckets
    }

    /// Full latency distribution of successful transactions.
    pub fn latency_summary(&self) -> Summary {
        Summary::from_times(
            &self
                .records
                .iter()
                .filter_map(TxRecord::latency)
                .collect::<Vec<_>>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(submit_ms: u64, commit_ms: Option<u64>, code: Option<ValidationCode>) -> TxRecord {
        TxRecord {
            submitted_at: SimTime::from_millis(submit_ms),
            committed_at: commit_ms.map(SimTime::from_millis),
            code,
        }
    }

    #[test]
    fn latency_only_for_successes() {
        let ok = record(100, Some(350), Some(ValidationCode::Valid));
        assert_eq!(ok.latency(), Some(SimTime::from_millis(250)));
        let failed = record(100, Some(350), Some(ValidationCode::MvccConflict));
        assert_eq!(failed.latency(), None);
        let pending = record(100, None, None);
        assert_eq!(pending.latency(), None);
    }

    #[test]
    fn run_metrics_aggregation() {
        let metrics = RunMetrics {
            channel: ChannelId::DEFAULT,
            records: vec![
                record(0, Some(100), Some(ValidationCode::Valid)),
                record(10, Some(100), Some(ValidationCode::MvccConflict)),
                record(20, Some(200), Some(ValidationCode::ValidMerged)),
                record(30, None, None),
            ],
            end_time: SimTime::from_secs(2),
            blocks_committed: 2,
            resubmissions: 0,
            events: Vec::new(),
            dissemination: None,
            ordering: None,
            decode_cache: None,
            adversary: None,
            pipelined: None,
            retry: RetryMetrics::default(),
            conflict_policy: None,
        };
        assert_eq!(metrics.submitted(), 4);
        assert_eq!(metrics.successful(), 2);
        assert_eq!(metrics.failed(), 2);
        assert_eq!(metrics.failures_with(ValidationCode::MvccConflict), 1);
        assert!((metrics.successful_throughput_tps() - 1.0).abs() < 1e-9);
        // Latencies: 100ms and 180ms → mean 140ms.
        assert!((metrics.avg_latency_secs().unwrap() - 0.14).abs() < 1e-9);
    }

    #[test]
    fn throughput_series_buckets_successes() {
        let metrics = RunMetrics {
            channel: ChannelId::DEFAULT,
            records: vec![
                record(0, Some(500), Some(ValidationCode::Valid)),
                record(0, Some(800), Some(ValidationCode::ValidMerged)),
                record(0, Some(800), Some(ValidationCode::MvccConflict)), // not counted
                record(0, Some(1500), Some(ValidationCode::Valid)),
            ],
            end_time: SimTime::from_secs(2),
            blocks_committed: 2,
            resubmissions: 0,
            events: Vec::new(),
            dissemination: None,
            ordering: None,
            decode_cache: None,
            adversary: None,
            pipelined: None,
            retry: RetryMetrics::default(),
            conflict_policy: None,
        };
        let series = metrics.throughput_series(SimTime::from_secs(1));
        assert_eq!(series.counts(), &[2, 1]);
    }

    #[test]
    fn dissemination_ratios_and_catch_up() {
        let d = DisseminationMetrics {
            propagation: vec![SimTime::from_millis(2), SimTime::from_millis(4)],
            messages_sent: 10,
            redundant_messages: 3,
            messages_dropped: 2,
            messages_duplicated: 1,
            anti_entropy_transfers: 1,
            anti_entropy_blocks: 4,
            catch_up: vec![
                CatchUpEpisode {
                    peer: 1,
                    from: SimTime::from_secs(1),
                    bytes_shipped: 4096,
                    outcome: CatchUpOutcome::Replay {
                        caught_up_at: SimTime::from_secs(3),
                    },
                },
                CatchUpEpisode {
                    peer: 2,
                    from: SimTime::from_secs(1),
                    bytes_shipped: 1024,
                    outcome: CatchUpOutcome::Snapshot {
                        caught_up_at: SimTime::from_secs(2),
                        snapshot_bytes: 900,
                    },
                },
                // Abandoned long after the others started: must not win
                // worst_catch_up even though its span is the longest.
                CatchUpEpisode {
                    peer: 3,
                    from: SimTime::from_secs(1),
                    bytes_shipped: 0,
                    outcome: CatchUpOutcome::Abandoned {
                        at: SimTime::from_secs(9),
                    },
                },
            ],
            ..DisseminationMetrics::default()
        };
        // 10 sent − 2 dropped + 1 duplicate = 9 received, 3 redundant.
        assert!((d.redundancy_ratio() - 3.0 / 9.0).abs() < 1e-9);
        let worst = d.worst_catch_up().unwrap();
        assert_eq!(worst.peer, 1);
        assert_eq!(worst.duration(), SimTime::from_secs(2));
        assert_eq!(worst.completed_at(), Some(SimTime::from_secs(3)));
        assert!(!worst.used_snapshot());
        assert!(d.catch_up[1].used_snapshot());
        assert!(d.catch_up[2].is_abandoned());
        assert_eq!(d.catch_up[2].completed_at(), None);
        assert_eq!(d.catch_up[2].duration(), SimTime::from_secs(8));
        assert!((d.propagation_summary().mean().unwrap() - 0.003).abs() < 1e-9);
        assert_eq!(DisseminationMetrics::default().redundancy_ratio(), 0.0);
        assert!(DisseminationMetrics::default().worst_catch_up().is_none());
    }

    #[test]
    fn redundancy_ratio_survives_excess_drops() {
        // Regression: a lossy-link schedule can report more drops than
        // `sent + duplicated` (e.g. duplicated copies dropped without
        // being re-counted as sent). The old unchecked subtraction
        // underflowed u64 and produced a ratio of ~0 over 2^64.
        let d = DisseminationMetrics {
            messages_sent: 3,
            messages_duplicated: 1,
            messages_dropped: 7,
            redundant_messages: 2,
            ..DisseminationMetrics::default()
        };
        assert_eq!(d.redundancy_ratio(), 0.0);
    }

    #[test]
    fn ordering_metrics_percentiles() {
        let o = OrderingMetrics {
            elections_started: 3,
            leader_changes: 1,
            final_term: 2,
            commit_latency: vec![SimTime::from_millis(2), SimTime::from_millis(6)],
            submission_retries: 4,
            messages_sent: 100,
            messages_dropped: 5,
        };
        let summary = o.commit_latency_summary();
        assert_eq!(summary.count(), 2);
        assert!((summary.mean().unwrap() - 0.004).abs() < 1e-9);
        assert_eq!(
            OrderingMetrics::default().commit_latency_summary().count(),
            0
        );
    }

    #[test]
    fn decode_cache_hit_ratio() {
        let stats = DecodeCacheMetrics {
            hits: 3,
            misses: 1,
            evictions: 0,
        };
        assert!((stats.hit_ratio().unwrap() - 0.75).abs() < 1e-9);
        assert_eq!(DecodeCacheMetrics::default().hit_ratio(), None);
    }

    #[test]
    fn run_metrics_equality_ignores_decode_cache() {
        let mut a = RunMetrics::default();
        let b = RunMetrics::default();
        a.decode_cache = Some(DecodeCacheMetrics {
            hits: 10,
            misses: 2,
            evictions: 1,
        });
        assert_eq!(
            a, b,
            "scheduling-dependent cache counters must not break equality"
        );
        a.pipelined = Some(PipelineMetrics {
            blocks_overlapped: 7,
            ..PipelineMetrics::default()
        });
        assert_eq!(
            a, b,
            "overlap-schedule counters must not break equality either"
        );
        a.blocks_committed = 1;
        assert_ne!(a, b);
    }

    #[test]
    fn adversary_metrics_participate_in_equality() {
        // Detection is deterministic, so unlike the decode cache the
        // adversary counters must break equality when they differ.
        let mut a = RunMetrics::default();
        let b = RunMetrics::default();
        a.adversary = Some(AdversaryMetrics {
            tampered_rejected: 2,
            forged_rejected: 1,
            ..AdversaryMetrics::default()
        });
        assert_ne!(a, b);
        assert_eq!(a.adversary.unwrap().rejected_blocks(), 3);
    }

    #[test]
    fn empty_run_is_well_defined() {
        let metrics = RunMetrics::default();
        assert_eq!(metrics.successful(), 0);
        assert_eq!(metrics.successful_throughput_tps(), 0.0);
        // A run with no successes has no latency at all — not 0.0 s.
        assert_eq!(metrics.avg_latency_secs(), None);
    }
}
