//! Transaction reordering at the orderer — the Fabric++ baseline.
//!
//! The FabricCRDT paper's related work (§8) discusses Sharma et al.
//! ("Blurring the Lines Between Blockchains and Database Systems",
//! SIGMOD 2019): *"They decrease the number of conflicting transactions
//! by improving the order of the transactions in the ordering service
//! according to a dependency graph. Although they show that reordering
//! is a practical approach for decreasing transaction failures, they do
//! not aim for the total elimination of failures, as FabricCRDT does."*
//!
//! This module implements that baseline so the two approaches can be
//! compared head-to-head (see the `ablation` bench binary):
//!
//! 1. Build the intra-batch conflict graph: an edge `R → W` whenever
//!    transaction `R` reads a key that transaction `W` writes — `R` must
//!    be ordered *before* `W` for both to pass MVCC validation.
//! 2. Transactions on a dependency cycle can never all commit; break
//!    cycles by **early-aborting** every member of a non-trivial
//!    strongly connected component except its smallest-index
//!    representative (read-modify-write transactions on a hot key form
//!    exactly such cliques, which is why reordering cannot rescue the
//!    paper's all-conflicting workload — FabricCRDT can).
//! 3. Emit the survivors in a topological order of the condensed graph
//!    (deterministic: Kahn's algorithm with an index-ordered frontier).

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use fabriccrdt_ledger::transaction::Transaction;

/// Result of reordering one batch.
#[derive(Debug)]
pub struct ReorderOutcome {
    /// Survivors, in an order where every reader of a key precedes every
    /// (other) writer of that key.
    pub ordered: Vec<Transaction>,
    /// Early-aborted transactions (conflict-cycle members).
    pub aborted: Vec<Transaction>,
}

/// Reorders a batch of transactions to minimize intra-block MVCC
/// conflicts, early-aborting unsalvageable cycles.
pub fn reorder_batch(transactions: Vec<Transaction>) -> ReorderOutcome {
    let n = transactions.len();
    if n <= 1 {
        return ReorderOutcome {
            ordered: transactions,
            aborted: Vec::new(),
        };
    }

    // Key → reader/writer transaction indices.
    let mut readers: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut writers: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, tx) in transactions.iter().enumerate() {
        for (key, _) in tx.rwset.reads.iter() {
            readers.entry(key).or_default().push(i);
        }
        for (key, _) in tx.rwset.writes.iter() {
            writers.entry(key).or_default().push(i);
        }
    }

    // Dependency edges: reader → writer (reader first).
    let mut successors: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for (key, reader_list) in &readers {
        if let Some(writer_list) = writers.get(key) {
            for &r in reader_list {
                for &w in writer_list {
                    if r != w {
                        successors[r].insert(w);
                    }
                }
            }
        }
    }

    // Strongly connected components (iterative Tarjan).
    let components = tarjan_scc(&successors);

    // Abort all but the smallest-index member of each non-trivial SCC.
    // A single node with a self-loop cannot occur (edges exclude r == w).
    let mut aborted_flags = vec![false; n];
    for component in &components {
        if component.len() > 1 {
            let keep = *component.iter().min().expect("nonempty SCC");
            for &member in component {
                if member != keep {
                    aborted_flags[member] = true;
                }
            }
        }
    }

    // Kahn's algorithm over the surviving subgraph, smallest index first
    // for determinism.
    let mut indegree = vec![0usize; n];
    for (from, succs) in successors.iter().enumerate() {
        if aborted_flags[from] {
            continue;
        }
        for &to in succs {
            if !aborted_flags[to] {
                indegree[to] += 1;
            }
        }
    }
    let mut frontier: BinaryHeap<Reverse<usize>> = (0..n)
        .filter(|&i| !aborted_flags[i] && indegree[i] == 0)
        .map(Reverse)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(Reverse(i)) = frontier.pop() {
        order.push(i);
        for &to in &successors[i] {
            if aborted_flags[to] {
                continue;
            }
            indegree[to] -= 1;
            if indegree[to] == 0 {
                frontier.push(Reverse(to));
            }
        }
    }
    debug_assert_eq!(
        order.len(),
        aborted_flags.iter().filter(|a| !**a).count(),
        "survivor graph is acyclic after SCC breaking"
    );

    // Materialize, preserving the original Transaction values.
    let mut slots: Vec<Option<Transaction>> = transactions.into_iter().map(Some).collect();
    let ordered = order
        .into_iter()
        .map(|i| slots[i].take().expect("each index used once"))
        .collect();
    let aborted = slots.into_iter().flatten().collect();
    ReorderOutcome { ordered, aborted }
}

/// Iterative Tarjan SCC; returns components in reverse topological
/// order (irrelevant here — only membership is used).
fn tarjan_scc(successors: &[BTreeSet<usize>]) -> Vec<Vec<usize>> {
    let n = successors.len();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components = Vec::new();

    // Explicit DFS state: (node, iterator position over successors).
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call_stack: Vec<(usize, Vec<usize>, usize)> = Vec::new();
        let succ_list: Vec<usize> = successors[root].iter().copied().collect();
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        call_stack.push((root, succ_list, 0));

        while let Some((node, succs, mut pos)) = call_stack.pop() {
            let mut descended = false;
            while pos < succs.len() {
                let next = succs[pos];
                pos += 1;
                if index[next] == usize::MAX {
                    // Descend.
                    index[next] = next_index;
                    lowlink[next] = next_index;
                    next_index += 1;
                    stack.push(next);
                    on_stack[next] = true;
                    call_stack.push((node, succs, pos));
                    let next_succs: Vec<usize> = successors[next].iter().copied().collect();
                    call_stack.push((next, next_succs, 0));
                    descended = true;
                    break;
                } else if on_stack[next] {
                    lowlink[node] = lowlink[node].min(index[next]);
                }
            }
            if descended {
                continue;
            }
            // Node finished.
            if lowlink[node] == index[node] {
                let mut component = Vec::new();
                loop {
                    let member = stack.pop().expect("tarjan stack nonempty");
                    on_stack[member] = false;
                    component.push(member);
                    if member == node {
                        break;
                    }
                }
                components.push(component);
            }
            if let Some((parent, _, _)) = call_stack.last() {
                lowlink[*parent] = lowlink[*parent].min(lowlink[node]);
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabriccrdt_crypto::Identity;
    use fabriccrdt_ledger::rwset::ReadWriteSet;
    use fabriccrdt_ledger::transaction::TxId;
    use fabriccrdt_ledger::version::Height;

    fn tx(n: u64, reads: &[&str], writes: &[&str]) -> Transaction {
        let client = Identity::new("client", "org1");
        let mut rwset = ReadWriteSet::new();
        for key in reads {
            rwset.reads.record(*key, Some(Height::new(1, 0)));
        }
        for key in writes {
            rwset.writes.put(*key, vec![n as u8]);
        }
        Transaction {
            id: TxId::derive(&client, n, "cc"),
            client,
            chaincode: "cc".into(),
            rwset,
            endorsements: Vec::new(),
        }
    }

    fn nonces(txs: &[Transaction]) -> Vec<u8> {
        txs.iter()
            .map(|t| {
                t.rwset
                    .writes
                    .iter()
                    .next()
                    .map(|(_, e)| e.value[0])
                    .unwrap_or(255)
            })
            .collect()
    }

    #[test]
    fn disjoint_transactions_unchanged() {
        let batch = vec![
            tx(0, &["a"], &["a"]),
            tx(1, &["b"], &["b"]),
            tx(2, &[], &["c"]),
        ];
        let outcome = reorder_batch(batch);
        assert!(outcome.aborted.is_empty());
        assert_eq!(nonces(&outcome.ordered), [0, 1, 2]);
    }

    #[test]
    fn readers_move_before_writers() {
        // Writer of k first, two readers of k after: vanilla order fails
        // both readers; reordering puts readers first, all commit.
        let batch = vec![
            tx(0, &[], &["k"]),     // writer
            tx(1, &["k"], &["p1"]), // reader
            tx(2, &["k"], &["p2"]), // reader
        ];
        let outcome = reorder_batch(batch);
        assert!(outcome.aborted.is_empty());
        let order = nonces(&outcome.ordered);
        let writer_pos = order.iter().position(|&n| n == 0).unwrap();
        assert_eq!(writer_pos, 2, "writer last: {order:?}");
    }

    #[test]
    fn rmw_cycle_aborts_all_but_one() {
        // Three read-modify-write transactions on one hot key form a
        // conflict clique; only one can survive.
        let batch = vec![
            tx(0, &["hot"], &["hot"]),
            tx(1, &["hot"], &["hot"]),
            tx(2, &["hot"], &["hot"]),
        ];
        let outcome = reorder_batch(batch);
        assert_eq!(outcome.ordered.len(), 1);
        assert_eq!(outcome.aborted.len(), 2);
        // Deterministic survivor: smallest index.
        assert_eq!(nonces(&outcome.ordered), [0]);
    }

    #[test]
    fn two_key_cycle_broken() {
        // T0 reads a writes b; T1 reads b writes a: cycle of length 2.
        let batch = vec![tx(0, &["a"], &["b"]), tx(1, &["b"], &["a"])];
        let outcome = reorder_batch(batch);
        assert_eq!(outcome.ordered.len(), 1);
        assert_eq!(outcome.aborted.len(), 1);
    }

    #[test]
    fn chain_orders_topologically() {
        // T0 reads a (written by T1); T1 reads b (written by T2):
        // valid order is T0, T1, T2.
        let batch = vec![
            tx(2, &[], &["b"]),
            tx(0, &["a"], &["p0"]),
            tx(1, &["b"], &["a"]),
        ];
        let outcome = reorder_batch(batch);
        assert!(outcome.aborted.is_empty());
        assert_eq!(nonces(&outcome.ordered), [0, 1, 2]);
    }

    #[test]
    fn empty_and_singleton_batches() {
        assert!(reorder_batch(vec![]).ordered.is_empty());
        let one = reorder_batch(vec![tx(0, &["k"], &["k"])]);
        assert_eq!(one.ordered.len(), 1);
        assert!(one.aborted.is_empty());
    }

    #[test]
    fn deterministic() {
        let make = || {
            vec![
                tx(0, &["a"], &["b"]),
                tx(1, &["b"], &["c"]),
                tx(2, &["c"], &["a"]),
                tx(3, &["a"], &["p"]),
                tx(4, &[], &["a"]),
            ]
        };
        let x = reorder_batch(make());
        let y = reorder_batch(make());
        assert_eq!(nonces(&x.ordered), nonces(&y.ordered));
        assert_eq!(x.aborted.len(), y.aborted.len());
    }

    /// Reordered batches really do commit more under MVCC.
    #[test]
    fn reordering_improves_mvcc_outcomes() {
        use fabriccrdt_ledger::block::Block;
        use fabriccrdt_ledger::mvcc;
        use fabriccrdt_ledger::worldstate::WorldState;

        let batch = || {
            vec![
                tx(0, &[], &["k"]),
                tx(1, &["k"], &["p1"]),
                tx(2, &["k"], &["p2"]),
                tx(3, &["k"], &["p3"]),
            ]
        };
        let seed = |state: &mut WorldState| {
            state.put("k".into(), b"v".to_vec(), Height::new(1, 0));
        };

        // Vanilla order: writer first invalidates all three readers.
        let mut state = WorldState::new();
        seed(&mut state);
        let mut block = Block::assemble(2, [0; 32], batch());
        let vanilla = mvcc::validate_and_commit(&mut block, &mut state, &[], false);

        // Reordered: readers first, everyone commits.
        let mut state = WorldState::new();
        seed(&mut state);
        let outcome = reorder_batch(batch());
        let mut block = Block::assemble(2, [0; 32], outcome.ordered);
        let reordered = mvcc::validate_and_commit(&mut block, &mut state, &[], false);

        assert_eq!(vanilla.successes, 1);
        assert_eq!(reordered.successes, 4);
    }
}
