//! Durable peer storage, snapshot cadence and frontier-driven GC.
//!
//! This is the fabric-layer orchestration above the raw
//! [`LedgerStore`] backends of `fabriccrdt_ledger::store`:
//!
//! - [`StorageConfig`] / [`StorageBackend`] select a backend (in-memory
//!   or append-only file) and set the snapshot cadence and whether
//!   frontier-driven GC runs — attached to a pipeline via
//!   [`PipelineConfig::with_storage`](crate::config::PipelineConfig::with_storage).
//! - [`DurableLedger`] wraps one peer's store: it appends every
//!   committed block, writes a [`LedgerSnapshot`] every
//!   `snapshot_interval` blocks, compacts records the latest snapshot
//!   covers, and [`DurableLedger::recover`]s a [`Peer`] after a crash.
//! - [`AckFrontier`] is the cluster-wide GC coordination point: a
//!   version vector mapping each peer to the block height it has
//!   contiguously committed (acknowledged via gossip). History at or
//!   below the *minimum* acknowledged height is merged everywhere, so
//!   [`Peer::prune_up_to`] and [`DurableLedger::compact_up_to`] may
//!   drop it without any replica ever needing those operations again.
//! - [`encode_frontiers`] / [`decode_frontiers`] serialize the per-key
//!   CRDT merge frontiers ([`Peer::merge_frontiers`]) into the opaque
//!   `frontiers` component of a [`LedgerSnapshot`].
//!
//! Recovery prefers a **full replay** whenever the store retains a
//! contiguous block run from 1: replaying every block reproduces a
//! byte-identical ledger (same [`Peer::snapshot`] bytes as a peer that
//! never crashed). Only when compaction has dropped the prefix does
//! recovery install the latest snapshot and replay the suffix — then
//! state, tip hash and frontiers still match, but the encoded chain
//! resumes at the snapshot anchor instead of genesis.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::PathBuf;

use fabriccrdt_jsoncrdt::clock::{OpId, ReplicaId, VersionVector};
use fabriccrdt_ledger::block::Block;
use fabriccrdt_ledger::chain::ChainError;
use fabriccrdt_ledger::codec::DecodeError;
use fabriccrdt_ledger::store::{
    blocks_by_number, AofStore, LedgerSnapshot, LedgerStore, MemoryStore, StoreError,
};

use crate::channel::ChannelId;
use crate::peer::Peer;
use crate::policy::EndorsementPolicy;
use crate::validator::BlockValidator;

/// Frontier-table layout version; bump on layout changes.
const FRONTIER_FORMAT_VERSION: u8 = 1;

// ------------------------------------------------------------- config

/// Which [`LedgerStore`] backend a peer persists to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageBackend {
    /// Encoded records held in memory — the trait-shaped status quo.
    Memory,
    /// One append-only file per peer, `peer-<index>.aof` under `dir`.
    AppendOnlyFile {
        /// Directory holding the per-peer files (created on open).
        dir: PathBuf,
    },
}

/// Durable-storage settings for a simulated network's peers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageConfig {
    /// The backend every peer opens.
    pub backend: StorageBackend,
    /// Write a snapshot each time a peer's committed height reaches a
    /// multiple of this; `0` disables snapshots (and therefore GC and
    /// snapshot catch-up — the store only ever grows).
    pub snapshot_interval: u64,
    /// When true, peers prune operation history and compact their
    /// stores up to the minimum height every replica has acknowledged
    /// (the [`AckFrontier`] floor).
    pub gc: bool,
    /// When true, append-only-file stores `fsync` every appended
    /// record, upgrading the crash model from process loss to power
    /// loss. Ignored by the in-memory backend.
    pub fsync: bool,
}

impl StorageConfig {
    /// In-memory storage, no snapshots, no GC.
    pub fn memory() -> Self {
        StorageConfig {
            backend: StorageBackend::Memory,
            snapshot_interval: 0,
            gc: false,
            fsync: false,
        }
    }

    /// Append-only-file storage under `dir`, no snapshots, no GC, no
    /// fsync.
    pub fn append_only(dir: impl Into<PathBuf>) -> Self {
        StorageConfig {
            backend: StorageBackend::AppendOnlyFile { dir: dir.into() },
            snapshot_interval: 0,
            gc: false,
            fsync: false,
        }
    }

    /// Sets the snapshot cadence (builder style); see
    /// [`StorageConfig::snapshot_interval`].
    pub fn with_snapshot_interval(mut self, every: u64) -> Self {
        self.snapshot_interval = every;
        self
    }

    /// Enables frontier-driven GC (builder style); see
    /// [`StorageConfig::gc`].
    pub fn with_gc(mut self, gc: bool) -> Self {
        self.gc = gc;
        self
    }

    /// Enables fsync-on-append durability (builder style); see
    /// [`StorageConfig::fsync`].
    pub fn with_fsync(mut self, fsync: bool) -> Self {
        self.fsync = fsync;
        self
    }
}

// ----------------------------------------------------- durable ledger

/// One peer's durable ledger: a [`LedgerStore`] plus the snapshot
/// cadence and GC switch from [`StorageConfig`], and a cache of the
/// latest snapshot so catch-up helpers can serve it without re-reading
/// the store.
pub struct DurableLedger {
    store: Box<dyn LedgerStore>,
    snapshot_interval: u64,
    gc: bool,
    latest_snapshot: Option<LedgerSnapshot>,
    /// Highest block height this store knows to be *finalized*: the
    /// maximum over every block appended via
    /// [`DurableLedger::append_block`] and every installed snapshot's
    /// `last_block` (a donor snapshot is another replica's finalized
    /// ledger). The snapshot cadence and compaction key off this
    /// watermark, never off arrival order — under the pipelined commit
    /// path a block can be decoded and pre-validated well before its
    /// conflict-chain finalize runs, and a snapshot cut at such an
    /// in-flight height would capture a state the sequential path
    /// never produces.
    appended_tip: u64,
}

impl fmt::Debug for DurableLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurableLedger")
            .field("snapshot_interval", &self.snapshot_interval)
            .field("gc", &self.gc)
            .field(
                "latest_snapshot_block",
                &self.latest_snapshot.as_ref().map(|s| s.last_block),
            )
            .field("appended_tip", &self.appended_tip)
            .finish_non_exhaustive()
    }
}

/// A recovered peer plus how recovery got there — used by tests and
/// the gossip layer's restart path to account for what was replayed.
#[derive(Debug)]
pub struct Recovery<V> {
    /// The rebuilt peer, ready to commit the next block.
    pub peer: Peer<V>,
    /// Whether a snapshot was installed (false = full replay from
    /// genesis, which is byte-identical to never having crashed).
    pub used_snapshot: bool,
    /// Block records replayed on top of the starting point.
    pub replayed_blocks: u64,
}

/// Error from [`DurableLedger::recover`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoverError {
    /// The store could not be read back.
    Store(StoreError),
    /// A snapshot component failed to decode.
    Decode(DecodeError),
    /// A retained block did not extend the rebuilt chain.
    Replay(ChainError),
    /// The retained blocks have a gap the snapshot does not cover:
    /// block `expected` is missing.
    MissingBlocks {
        /// The first block number recovery needed but could not find.
        expected: u64,
    },
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::Store(e) => write!(f, "recovery load failed: {e}"),
            RecoverError::Decode(e) => write!(f, "recovery snapshot corrupt: {e}"),
            RecoverError::Replay(e) => write!(f, "recovery replay failed: {e:?}"),
            RecoverError::MissingBlocks { expected } => {
                write!(f, "recovery missing block {expected}")
            }
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<StoreError> for RecoverError {
    fn from(e: StoreError) -> Self {
        RecoverError::Store(e)
    }
}

impl From<DecodeError> for RecoverError {
    fn from(e: DecodeError) -> Self {
        RecoverError::Decode(e)
    }
}

impl From<ChainError> for RecoverError {
    fn from(e: ChainError) -> Self {
        RecoverError::Replay(e)
    }
}

impl DurableLedger {
    /// Opens peer `peer_index`'s store per `config` (creating the AOF
    /// directory and file as needed) and caches its latest snapshot.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] when the backend cannot be opened or
    /// its existing records cannot be read back.
    pub fn open(config: &StorageConfig, peer_index: usize) -> Result<Self, StoreError> {
        Self::open_channel(config, ChannelId::DEFAULT, peer_index)
    }

    /// Opens peer `peer_index`'s store for `channel`. The default
    /// channel keeps the historical `peer-<index>.aof` file name;
    /// other channels get `ch<channel>-peer-<index>.aof`, so every
    /// (channel, peer) pair has its own ledger file under one
    /// directory.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] when the backend cannot be opened or
    /// its existing records cannot be read back.
    pub fn open_channel(
        config: &StorageConfig,
        channel: ChannelId,
        peer_index: usize,
    ) -> Result<Self, StoreError> {
        let store: Box<dyn LedgerStore> = match &config.backend {
            StorageBackend::Memory => Box::new(MemoryStore::new()),
            StorageBackend::AppendOnlyFile { dir } => {
                fs::create_dir_all(dir).map_err(|e| StoreError::Io {
                    op: "create-dir",
                    message: e.to_string(),
                })?;
                let file = if channel == ChannelId::DEFAULT {
                    format!("peer-{peer_index}.aof")
                } else {
                    format!("ch{}-peer-{peer_index}.aof", channel.0)
                };
                Box::new(AofStore::open_with_fsync(dir.join(file), config.fsync)?)
            }
        };
        let stored = store.load()?;
        let latest_snapshot = stored.snapshot;
        let appended_tip = stored
            .blocks
            .iter()
            .map(|b| b.header.number)
            .max()
            .unwrap_or(0)
            .max(latest_snapshot.as_ref().map_or(0, |s| s.last_block));
        Ok(DurableLedger {
            store,
            snapshot_interval: config.snapshot_interval,
            gc: config.gc,
            latest_snapshot,
            appended_tip,
        })
    }

    /// Whether the store retains a block record numbered `number` —
    /// how gossip anti-entropy probes whether a helper can serve a
    /// block its in-memory chain has already pruned.
    pub fn has_block(&self, number: u64) -> bool {
        self.store.has_block(number)
    }

    /// All retained block records, in append order. Gossip anti-entropy
    /// reads these to serve replay suffixes that start below a helper's
    /// in-memory chain base.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] when records cannot be read back.
    pub fn retained_blocks(&self) -> Result<Vec<Block>, StoreError> {
        Ok(self.store.load()?.blocks)
    }

    /// Appends a committed block record and advances the finalized
    /// watermark ([`DurableLedger::finalized_tip`]) to its height.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] when the backend cannot persist it.
    pub fn append_block(&mut self, block: &Block) -> Result<(), StoreError> {
        self.store.append_block(block)?;
        self.appended_tip = self.appended_tip.max(block.header.number);
        Ok(())
    }

    /// The highest block height this store knows to be finalized —
    /// appended as a committed record or covered by an installed
    /// snapshot. The snapshot cadence never fires above it.
    pub fn finalized_tip(&self) -> u64 {
        self.appended_tip
    }

    /// Whether a snapshot is due at committed height `last_block`:
    /// the cadence is enabled, the height is a positive multiple of
    /// it, no snapshot at or past that height exists yet, **and** the
    /// height is finalized — its block record has actually been
    /// appended (or a snapshot covering it installed). The last clause
    /// keys the cadence off finalized height rather than arrival
    /// order: a pipelined peer may hold block `last_block` fully
    /// pre-validated while its finalize is still in flight, and
    /// snapshotting there would capture a state no sequential replica
    /// produces at that height.
    pub fn snapshot_due(&self, last_block: u64) -> bool {
        self.snapshot_interval > 0
            && last_block > 0
            && last_block <= self.appended_tip
            && last_block.is_multiple_of(self.snapshot_interval)
            && self
                .latest_snapshot
                .as_ref()
                .is_none_or(|s| s.last_block < last_block)
    }

    /// Stores a snapshot record and caches it as the latest.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] when the backend cannot persist it.
    pub fn put_snapshot(&mut self, snapshot: LedgerSnapshot) -> Result<(), StoreError> {
        self.store.put_snapshot(&snapshot)?;
        // A snapshot is finalized state by construction (ours or a
        // donor replica's), so it advances the watermark even when the
        // covered block records were never appended locally.
        self.appended_tip = self.appended_tip.max(snapshot.last_block);
        if self
            .latest_snapshot
            .as_ref()
            .is_none_or(|s| s.last_block <= snapshot.last_block)
        {
            self.latest_snapshot = Some(snapshot);
        }
        Ok(())
    }

    /// The most recent snapshot written to (or recovered from) this
    /// store, if any — what snapshot catch-up ships to a lagging peer.
    pub fn latest_snapshot(&self) -> Option<&LedgerSnapshot> {
        self.latest_snapshot.as_ref()
    }

    /// Whether frontier-driven GC is switched on for this peer.
    pub fn gc_enabled(&self) -> bool {
        self.gc
    }

    /// Compacts block records at or below `block_num` — clamped to the
    /// latest snapshot (see [`LedgerStore::compact_up_to`]) *and* to
    /// the finalized watermark, so a floor quoted against blocks that
    /// merely arrived (but have not finalized here) can never drop
    /// records the sequential path would still retain. Returns the
    /// number of block records dropped.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] when the backend cannot rewrite itself.
    pub fn compact_up_to(&mut self, block_num: u64) -> Result<u64, StoreError> {
        self.store.compact_up_to(block_num.min(self.appended_tip))
    }

    /// Rebuilds a peer from this store after a crash; see
    /// [`DurableLedger::recover_seeded`] (this is the no-seeds form).
    ///
    /// # Errors
    ///
    /// Returns a [`RecoverError`] when the store cannot be read, a
    /// snapshot component is corrupt, a block fails to replay, or the
    /// retained blocks have a gap the snapshot does not cover.
    pub fn recover<V: BlockValidator>(
        &self,
        validator: V,
        policy: EndorsementPolicy,
    ) -> Result<Recovery<V>, RecoverError> {
        self.recover_seeded(validator, policy, |_| {})
    }

    /// Rebuilds a peer from this store after a crash.
    ///
    /// If the retained block records form a contiguous run `1..=n`
    /// reaching at least as far as the latest snapshot, recovery
    /// replays them all onto a fresh peer — byte-identical to a peer
    /// that never crashed. Otherwise it installs the latest snapshot
    /// and replays the retained suffix above it.
    ///
    /// `seed` runs on the fresh peer *before* replay (only on the
    /// full-replay path) to re-apply genesis-height seeded state,
    /// which lives in no block; a snapshot's encoded state already
    /// includes it.
    ///
    /// # Errors
    ///
    /// Returns a [`RecoverError`] when the store cannot be read, a
    /// snapshot component is corrupt, a block fails to replay, or the
    /// retained blocks have a gap the snapshot does not cover.
    pub fn recover_seeded<V: BlockValidator>(
        &self,
        validator: V,
        policy: EndorsementPolicy,
        seed: impl FnOnce(&mut Peer<V>),
    ) -> Result<Recovery<V>, RecoverError> {
        let stored = self.store.load()?;
        let blocks = blocks_by_number(stored.blocks);
        let contiguous_from_one = blocks.keys().next() == Some(&1)
            && blocks
                .keys()
                .zip(1u64..)
                .all(|(&number, expected)| number == expected);
        let replay_reaches = blocks.keys().next_back().copied().unwrap_or(0);
        let replay_wins = (contiguous_from_one
            && stored
                .snapshot
                .as_ref()
                .is_none_or(|s| replay_reaches >= s.last_block))
            || (blocks.is_empty() && stored.snapshot.is_none());
        if replay_wins {
            let mut peer = Peer::new(validator, policy);
            seed(&mut peer);
            let replayed_blocks = blocks.len() as u64;
            for (_, block) in blocks {
                peer.replay_block(block)?;
            }
            return Ok(Recovery {
                peer,
                used_snapshot: false,
                replayed_blocks,
            });
        }
        let Some(snapshot) = stored.snapshot else {
            return Err(RecoverError::MissingBlocks { expected: 1 });
        };
        let mut peer = Peer::restore_from_snapshot(validator, policy, &snapshot)?;
        let mut expected = snapshot.last_block + 1;
        let mut replayed_blocks = 0u64;
        for (number, block) in blocks {
            if number <= snapshot.last_block {
                continue;
            }
            if number != expected {
                return Err(RecoverError::MissingBlocks { expected });
            }
            peer.replay_block(block)?;
            expected += 1;
            replayed_blocks += 1;
        }
        Ok(Recovery {
            peer,
            used_snapshot: true,
            replayed_blocks,
        })
    }
}

// -------------------------------------------------------- ack frontier

/// The cluster-wide GC coordination point: maps each peer (by index)
/// to the block height it has contiguously committed and acknowledged
/// over gossip. The *minimum* across all peers is the GC floor — every
/// replica has merged history up to it, so operations at or below it
/// can be pruned ([`Peer::prune_up_to`]) and their block records
/// compacted ([`DurableLedger::compact_up_to`]) without any replica
/// ever needing them again.
///
/// Internally a [`VersionVector`] whose "replica" is the peer index
/// and whose counter is the acknowledged height, so joins are the
/// CRDT pointwise max and acknowledgements commute.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AckFrontier {
    acked: VersionVector,
}

impl AckFrontier {
    /// An empty frontier: nothing acknowledged by anyone.
    pub fn new() -> Self {
        AckFrontier::default()
    }

    /// Records that `peer` has contiguously committed through block
    /// `height`. Lower (stale) acknowledgements are no-ops.
    pub fn ack(&mut self, peer: usize, height: u64) {
        let replica = ReplicaId(peer as u64);
        for h in self.acked.entry(replica) + 1..=height {
            self.acked.observe(OpId::new(h, replica));
        }
    }

    /// The height `peer` has acknowledged (0 if never heard from).
    pub fn acked(&self, peer: usize) -> u64 {
        self.acked.entry(ReplicaId(peer as u64))
    }

    /// The GC floor across a cluster of `peers` peers: the minimum
    /// acknowledged height (0 if any peer has never acknowledged).
    pub fn min_acked(&self, peers: usize) -> u64 {
        (0..peers).map(|p| self.acked(p)).min().unwrap_or(0)
    }

    /// Merges another frontier in (pointwise max) — how gossiped
    /// acknowledgement deltas combine.
    pub fn join(&mut self, other: &AckFrontier) {
        self.acked.join(&other.acked);
    }

    /// Serializes the frontier (the version-vector byte layout).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.acked.to_bytes()
    }

    /// Parses a frontier serialized by [`AckFrontier::to_bytes`];
    /// `None` for malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Option<AckFrontier> {
        VersionVector::from_bytes(bytes).map(|acked| AckFrontier { acked })
    }
}

// ---------------------------------------------------- frontier codecs

/// Encodes a per-key merge-frontier table
/// ([`Peer::merge_frontiers`]) as the opaque `frontiers` component of
/// a [`LedgerSnapshot`]: a version byte, a `u64` entry count, then per
/// key a length-prefixed UTF-8 key and a length-prefixed
/// [`VersionVector::to_bytes`] payload. Keys iterate in sorted order,
/// so the encoding is deterministic.
pub fn encode_frontiers(frontiers: &BTreeMap<String, VersionVector>) -> Vec<u8> {
    let mut out = vec![FRONTIER_FORMAT_VERSION];
    out.extend_from_slice(&(frontiers.len() as u64).to_be_bytes());
    for (key, frontier) in frontiers {
        out.extend_from_slice(&(key.len() as u64).to_be_bytes());
        out.extend_from_slice(key.as_bytes());
        let vv = frontier.to_bytes();
        out.extend_from_slice(&(vv.len() as u64).to_be_bytes());
        out.extend_from_slice(&vv);
    }
    out
}

fn take<'a>(
    data: &'a [u8],
    pos: &mut usize,
    n: usize,
    what: &'static str,
) -> Result<&'a [u8], DecodeError> {
    let end = pos.checked_add(n).ok_or(DecodeError::new(what, *pos))?;
    let slice = data.get(*pos..end).ok_or(DecodeError::new(what, *pos))?;
    *pos = end;
    Ok(slice)
}

fn take_u64(data: &[u8], pos: &mut usize, what: &'static str) -> Result<u64, DecodeError> {
    let slice = take(data, pos, 8, what)?;
    Ok(u64::from_be_bytes(slice.try_into().expect("8 bytes")))
}

/// Decodes a frontier table written by [`encode_frontiers`]. Total on
/// arbitrary input: truncated, oversized, non-UTF-8, duplicate-keyed
/// or malformed-vector tables all yield a structured error.
///
/// # Errors
///
/// Returns a [`DecodeError`] with byte-offset context for any
/// malformed input.
pub fn decode_frontiers(data: &[u8]) -> Result<BTreeMap<String, VersionVector>, DecodeError> {
    let mut pos = 0;
    let version = take(data, &mut pos, 1, "truncated frontier table")?[0];
    if version != FRONTIER_FORMAT_VERSION {
        return Err(DecodeError::new("unsupported frontier format version", 0));
    }
    let count = take_u64(data, &mut pos, "truncated frontier table")?;
    // Each entry takes at least two length prefixes; reject counts no
    // input of this size could hold before allocating.
    if count > (data.len() / 16 + 1) as u64 {
        return Err(DecodeError::new("implausible frontier count", pos - 8));
    }
    let mut out = BTreeMap::new();
    for _ in 0..count {
        let key_len = take_u64(data, &mut pos, "truncated frontier key")? as usize;
        let key_at = pos;
        let key_bytes = take(data, &mut pos, key_len, "frontier key exceeds input")?;
        let key = std::str::from_utf8(key_bytes)
            .map_err(|_| DecodeError::new("frontier key not UTF-8", key_at))?
            .to_string();
        let vv_len = take_u64(data, &mut pos, "truncated frontier vector")? as usize;
        let vv_at = pos;
        let vv_bytes = take(data, &mut pos, vv_len, "frontier vector exceeds input")?;
        let frontier = VersionVector::from_bytes(vv_bytes)
            .ok_or(DecodeError::new("malformed frontier vector", vv_at))?;
        if out.insert(key, frontier).is_some() {
            return Err(DecodeError::new("duplicate frontier key", key_at));
        }
    }
    if pos != data.len() {
        return Err(DecodeError::new("trailing bytes after frontier table", pos));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validator::FabricValidator;
    use fabriccrdt_crypto::{Identity, KeyPair};
    use fabriccrdt_ledger::block::ValidationCode;
    use fabriccrdt_ledger::rwset::ReadWriteSet;
    use fabriccrdt_ledger::transaction::{Endorsement, Transaction, TxId};
    use fabriccrdt_sim::gen;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let unique = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "fabriccrdt-storage-{}-{tag}-{unique}",
            std::process::id()
        ))
    }

    fn endorsed_tx(nonce: u64, crdt_keys: &[String]) -> Transaction {
        let client = Identity::new("client", "org1");
        let mut rwset = ReadWriteSet::new();
        if crdt_keys.is_empty() {
            rwset.writes.put(format!("plain{nonce}"), vec![nonce as u8]);
        }
        for key in crdt_keys {
            rwset
                .writes
                .put_crdt(key.clone(), format!("{{\"n\":\"{nonce}\"}}").into_bytes());
        }
        let mut tx = Transaction {
            id: TxId::derive(&client, nonce, "cc"),
            client,
            chaincode: "cc".into(),
            rwset,
            endorsements: Vec::new(),
        };
        let payload = tx.response_payload();
        for (i, org) in ["org1", "org2"].iter().enumerate() {
            let kp = KeyPair::derive(Identity::new(format!("peer{i}"), *org));
            tx.endorsements.push(Endorsement {
                endorser: kp.identity().clone(),
                signature: kp.sign(&payload),
            });
        }
        tx
    }

    fn test_peer() -> Peer<FabricValidator> {
        Peer::new(
            FabricValidator::new(),
            EndorsementPolicy::all_of(["org1", "org2"]),
        )
    }

    /// Commits a block of `txs` on `peer` and mirrors it into `store`,
    /// writing a snapshot when one is due. Returns the new tip number.
    fn commit_and_persist(
        peer: &mut Peer<FabricValidator>,
        store: &mut DurableLedger,
        txs: Vec<Transaction>,
    ) -> u64 {
        let block = Block::assemble(peer.chain().height(), peer.chain().tip_hash(), txs);
        let staged = peer.process_block(block);
        assert!(staged
            .block
            .validation_codes
            .iter()
            .all(|c| *c == ValidationCode::Valid));
        let tip = peer.commit(staged).unwrap().clone();
        store.append_block(&tip).unwrap();
        let tip_number = tip.header.number;
        if store.snapshot_due(tip_number) {
            store.put_snapshot(peer.ledger_snapshot()).unwrap();
        }
        tip_number
    }

    #[test]
    fn frontier_table_roundtrip_is_total() {
        let mut frontiers = BTreeMap::new();
        let mut vv = VersionVector::new();
        for counter in 1..=3 {
            vv.observe(OpId::new(counter, ReplicaId(7)));
        }
        vv.observe(OpId::new(1, ReplicaId(9)));
        frontiers.insert("doc".to_string(), vv);
        frontiers.insert("k2".to_string(), {
            let mut vv = VersionVector::new();
            vv.observe(OpId::new(1, ReplicaId(1)));
            vv
        });

        let bytes = encode_frontiers(&frontiers);
        assert_eq!(decode_frontiers(&bytes).unwrap(), frontiers);
        assert_eq!(
            decode_frontiers(&encode_frontiers(&BTreeMap::new())).unwrap(),
            BTreeMap::new()
        );
        for cut in 0..bytes.len() {
            assert!(decode_frontiers(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode_frontiers(&trailing).is_err());
        let mut wrong_version = bytes.clone();
        wrong_version[0] = 99;
        assert!(decode_frontiers(&wrong_version).is_err());
        let mut huge_count = bytes;
        huge_count[1..9].copy_from_slice(&u64::MAX.to_be_bytes());
        assert!(decode_frontiers(&huge_count).is_err());
    }

    #[test]
    fn ack_frontier_floor_join_and_bytes() {
        let mut a = AckFrontier::new();
        a.ack(0, 5);
        a.ack(1, 3);
        a.ack(1, 2); // stale: no-op
        assert_eq!(a.acked(0), 5);
        assert_eq!(a.acked(1), 3);
        assert_eq!(a.min_acked(2), 3);
        assert_eq!(a.min_acked(3), 0, "silent peer pins the floor");

        let mut b = AckFrontier::new();
        b.ack(1, 7);
        b.ack(2, 4);
        a.join(&b);
        assert_eq!(a.acked(1), 7);
        assert_eq!(a.min_acked(3), 4);

        let restored = AckFrontier::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(restored, a);
        assert!(AckFrontier::from_bytes(&[1, 2, 3]).is_none());
    }

    #[test]
    fn full_replay_recovery_is_byte_identical() {
        let config = StorageConfig::memory();
        let mut store = DurableLedger::open(&config, 0).unwrap();
        let mut live = test_peer();
        for n in 1..=5 {
            commit_and_persist(&mut live, &mut store, vec![endorsed_tx(n, &[])]);
        }
        let recovery = store
            .recover(
                FabricValidator::new(),
                EndorsementPolicy::all_of(["org1", "org2"]),
            )
            .unwrap();
        assert!(!recovery.used_snapshot);
        assert_eq!(recovery.replayed_blocks, 5);
        assert_eq!(recovery.peer.snapshot(), live.snapshot(), "byte-identical");
        assert_eq!(recovery.peer.merge_frontiers(), live.merge_frontiers());
    }

    #[test]
    fn empty_store_recovers_to_fresh_peer() {
        let store = DurableLedger::open(&StorageConfig::memory(), 0).unwrap();
        let recovery = store
            .recover(
                FabricValidator::new(),
                EndorsementPolicy::all_of(["org1", "org2"]),
            )
            .unwrap();
        assert!(!recovery.used_snapshot);
        assert_eq!(recovery.replayed_blocks, 0);
        assert_eq!(recovery.peer.chain().height(), 1, "genesis only");
    }

    #[test]
    fn snapshot_recovery_matches_live_state_after_compaction() {
        let config = StorageConfig::memory()
            .with_snapshot_interval(3)
            .with_gc(true);
        let mut store = DurableLedger::open(&config, 0).unwrap();
        let mut live = test_peer();
        let keys = ["doc".to_string()];
        for n in 1..=7 {
            commit_and_persist(&mut live, &mut store, vec![endorsed_tx(n, &keys)]);
        }
        assert_eq!(store.latest_snapshot().unwrap().last_block, 6);
        // Compact away the covered prefix; recovery must now install
        // the snapshot and replay only block 7.
        assert!(store.compact_up_to(u64::MAX).unwrap() > 0);
        let recovery = store
            .recover(
                FabricValidator::new(),
                EndorsementPolicy::all_of(["org1", "org2"]),
            )
            .unwrap();
        assert!(recovery.used_snapshot);
        assert_eq!(recovery.replayed_blocks, 1);
        let mut recovered = recovery.peer;
        assert_eq!(recovered.state(), live.state());
        assert_eq!(recovered.chain().tip_hash(), live.chain().tip_hash());
        assert_eq!(recovered.chain().height(), live.chain().height());
        assert_eq!(recovered.merge_frontiers(), live.merge_frontiers());
        assert_eq!(
            recovered.history().history("doc"),
            live.history().history("doc")
        );

        // Both peers process the next block identically, including
        // duplicate detection from the restored id set.
        let dup = live.chain().block(3).unwrap().transactions[0].clone();
        let txs = vec![endorsed_tx(99, &keys), dup];
        let block = Block::assemble(live.chain().height(), live.chain().tip_hash(), txs);
        let staged_live = live.process_block(block.clone());
        let staged_rec = recovered.process_block(block);
        assert_eq!(
            staged_live.block.validation_codes,
            vec![ValidationCode::Valid, ValidationCode::DuplicateTxId]
        );
        assert_eq!(
            staged_rec.block.validation_codes,
            staged_live.block.validation_codes
        );
        live.commit(staged_live).unwrap();
        recovered.commit(staged_rec).unwrap();
        assert_eq!(recovered.state(), live.state());
        assert_eq!(recovered.chain().tip_hash(), live.chain().tip_hash());
    }

    /// The cadence keys off *finalized* height, not arrival order: a
    /// pipelined peer holding block 2 fully pre-validated (it has
    /// "arrived") must not trigger the interval-2 snapshot until block
    /// 2's finalize has actually been appended — and the snapshot it
    /// then writes is byte-identical to a sequential replica's at the
    /// same height.
    #[test]
    fn snapshot_cadence_keys_off_finalized_height_not_arrival() {
        use crate::pipeline::ValidationPipeline;

        let config = StorageConfig::memory().with_snapshot_interval(2);
        // Raw blocks as an ordering service would publish them; both
        // replicas re-link and re-seal identically.
        let blocks: Vec<Block> = (1..=2)
            .map(|n| Block::assemble(n, [0; 32], vec![endorsed_tx(n, &["doc".to_string()])]))
            .collect();

        // Sequential reference replica.
        let mut seq_store = DurableLedger::open(&config, 0).unwrap();
        let mut seq = test_peer();
        for block in &blocks {
            let staged = seq.process_block(block.clone());
            let tip = seq.commit(staged).unwrap().clone();
            seq_store.append_block(&tip).unwrap();
            if seq_store.snapshot_due(tip.header.number) {
                seq_store.put_snapshot(seq.ledger_snapshot()).unwrap();
            }
        }
        let reference = seq_store.latest_snapshot().unwrap().clone();
        assert_eq!(reference.last_block, 2);

        // Pipelined replica: block 2 arrives while block 1 is still
        // in flight, so its pre-validation overlaps block 1's
        // finalize. Snapshot-cadence queries at height 2 must refuse
        // until block 2's finalize lands in the store.
        let mut store = DurableLedger::open(&config, 1).unwrap();
        let mut peer = test_peer().with_pipeline(ValidationPipeline::pipelined(2));
        let prep1 = peer.prevalidate(blocks[0].clone());
        let (staged1, prep2) = peer.finish_block_with_next(prep1, blocks[1].clone());
        assert!(
            !store.snapshot_due(2),
            "a merely-arrived height must not snapshot"
        );
        let tip1 = peer.commit(staged1).unwrap().clone();
        store.append_block(&tip1).unwrap();
        assert_eq!(store.finalized_tip(), 1);
        assert!(!store.snapshot_due(2), "block 2 is still mid-pipeline");
        let staged2 = peer.finish_block(prep2);
        let tip2 = peer.commit(staged2).unwrap().clone();
        store.append_block(&tip2).unwrap();
        assert!(store.snapshot_due(2), "finalized: the cadence fires");
        store.put_snapshot(peer.ledger_snapshot()).unwrap();
        assert_eq!(
            store.latest_snapshot().unwrap(),
            &reference,
            "pipelined snapshot diverges from the sequential replica's"
        );
    }

    #[test]
    fn full_replay_preferred_over_snapshot_when_blocks_complete() {
        let config = StorageConfig::memory().with_snapshot_interval(2);
        let mut store = DurableLedger::open(&config, 0).unwrap();
        let mut live = test_peer();
        for n in 1..=4 {
            commit_and_persist(&mut live, &mut store, vec![endorsed_tx(n, &[])]);
        }
        assert!(store.latest_snapshot().is_some());
        // No compaction: blocks 1..=4 all retained, so replay wins and
        // the recovered ledger is byte-identical (full genesis chain).
        let recovery = store
            .recover(
                FabricValidator::new(),
                EndorsementPolicy::all_of(["org1", "org2"]),
            )
            .unwrap();
        assert!(!recovery.used_snapshot);
        assert_eq!(recovery.peer.snapshot(), live.snapshot());
    }

    #[test]
    fn aof_and_memory_recovery_agree_across_reopen() {
        let dir = temp_dir("agree");
        let aof_config = StorageConfig::append_only(&dir).with_snapshot_interval(4);
        let mem_config = StorageConfig::memory().with_snapshot_interval(4);
        let mut live = test_peer();
        let keys = ["doc".to_string(), "cart".to_string()];
        {
            let mut aof = DurableLedger::open(&aof_config, 3).unwrap();
            let mut mem = DurableLedger::open(&mem_config, 3).unwrap();
            for n in 1..=6 {
                let block = Block::assemble(
                    live.chain().height(),
                    live.chain().tip_hash(),
                    vec![endorsed_tx(n, &keys[..(n as usize % 2 + 1)])],
                );
                let staged = live.process_block(block);
                let tip = live.commit(staged).unwrap().clone();
                aof.append_block(&tip).unwrap();
                mem.append_block(&tip).unwrap();
                if aof.snapshot_due(tip.header.number) {
                    aof.put_snapshot(live.ledger_snapshot()).unwrap();
                }
                if mem.snapshot_due(tip.header.number) {
                    mem.put_snapshot(live.ledger_snapshot()).unwrap();
                }
            }
            let policy = EndorsementPolicy::all_of(["org1", "org2"]);
            let from_mem = mem.recover(FabricValidator::new(), policy.clone()).unwrap();
            assert_eq!(from_mem.peer.snapshot(), live.snapshot());
            // Drop the AOF handle; recovery below re-opens from disk.
        }
        let reopened = DurableLedger::open(&aof_config, 3).unwrap();
        assert_eq!(reopened.latest_snapshot().unwrap().last_block, 4);
        let recovery = reopened
            .recover(
                FabricValidator::new(),
                EndorsementPolicy::all_of(["org1", "org2"]),
            )
            .unwrap();
        assert!(!recovery.used_snapshot, "full run retained: replay wins");
        assert_eq!(recovery.peer.snapshot(), live.snapshot(), "byte-identical");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_config_recovers_after_simulated_crash() {
        let dir = temp_dir("fsync");
        let config = StorageConfig::append_only(&dir)
            .with_fsync(true)
            .with_snapshot_interval(3);
        let mut live = test_peer();
        {
            let mut store = DurableLedger::open(&config, 0).unwrap();
            for n in 1..=5 {
                commit_and_persist(&mut live, &mut store, vec![endorsed_tx(n, &[])]);
            }
            // Simulated crash: the handle drops with no clean shutdown.
        }
        let reopened = DurableLedger::open(&config, 0).unwrap();
        assert_eq!(reopened.latest_snapshot().unwrap().last_block, 3);
        let recovery = reopened
            .recover(
                FabricValidator::new(),
                EndorsementPolicy::all_of(["org1", "org2"]),
            )
            .unwrap();
        assert!(!recovery.used_snapshot, "full run retained: replay wins");
        assert_eq!(recovery.replayed_blocks, 5);
        assert_eq!(recovery.peer.snapshot(), live.snapshot(), "byte-identical");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn channel_stores_use_distinct_files() {
        let dir = temp_dir("channel");
        let config = StorageConfig::append_only(&dir);
        let mut default_peer = test_peer();
        let mut other_peer = test_peer();
        {
            let mut ch0 = DurableLedger::open_channel(&config, ChannelId::DEFAULT, 2).unwrap();
            let mut ch1 = DurableLedger::open_channel(&config, ChannelId(1), 2).unwrap();
            commit_and_persist(&mut default_peer, &mut ch0, vec![endorsed_tx(1, &[])]);
            for n in 1..=2 {
                commit_and_persist(&mut other_peer, &mut ch1, vec![endorsed_tx(10 + n, &[])]);
            }
        }
        // The default channel keeps the historical file name; channel 1
        // gets its own file, and each reopens to its own contents.
        assert!(dir.join("peer-2.aof").exists());
        assert!(dir.join("ch1-peer-2.aof").exists());
        let ch0 = DurableLedger::open_channel(&config, ChannelId::DEFAULT, 2).unwrap();
        let ch1 = DurableLedger::open_channel(&config, ChannelId(1), 2).unwrap();
        assert!(ch0.has_block(1) && !ch0.has_block(2));
        assert!(ch1.has_block(1) && ch1.has_block(2));
        assert_eq!(ch0.retained_blocks().unwrap().len(), 1);
        assert_eq!(ch1.retained_blocks().unwrap().len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Property: over randomized CRDT write schedules, snapshot points
    /// and per-peer acknowledgement heights, pruning at the
    /// [`AckFrontier`] floor never touches state, tip, or any history
    /// entry above the floor — and a store compacted at the same floor
    /// still recovers a peer with identical state and tip.
    #[test]
    fn gc_at_ack_floor_preserves_everything_above_it() {
        let key_pool: Vec<String> = (0..4).map(|k| format!("key{k}")).collect();
        gen::cases(12, |g| {
            let block_count = g.size(2, 8) as u64;
            let interval = g.size(1, 4) as u64;
            let config = StorageConfig::memory()
                .with_snapshot_interval(interval)
                .with_gc(true);
            let mut store = DurableLedger::open(&config, 0).unwrap();
            let mut live = test_peer();
            let mut nonce = 0u64;
            for _ in 0..block_count {
                let txs = (0..g.size(1, 3))
                    .map(|_| {
                        nonce += 1;
                        let picks = g.size(0, 2);
                        let keys: Vec<String> =
                            (0..picks).map(|_| g.pick(&key_pool).clone()).collect();
                        endorsed_tx(nonce, &keys)
                    })
                    .collect();
                commit_and_persist(&mut live, &mut store, txs);
            }

            // Random acknowledgements from a 3-peer cluster, each at
            // most the committed height.
            let mut frontier = AckFrontier::new();
            for peer in 0..3 {
                frontier.ack(peer, g.range(0, block_count + 1));
            }
            let floor = frontier.min_acked(3);
            assert!(floor <= block_count);

            let before_state = live.state().clone();
            let before_tip = live.chain().tip_hash();
            let full_history: BTreeMap<String, Vec<_>> = live
                .history()
                .iter()
                .map(|(k, v)| (k.clone(), v.to_vec()))
                .collect();

            live.prune_up_to(floor);
            assert_eq!(live.state(), &before_state, "GC never touches state");
            assert_eq!(live.chain().tip_hash(), before_tip);
            for (key, entries) in &full_history {
                let kept = live.history().history(key);
                let expected: Vec<_> = entries
                    .iter()
                    .filter(|e| e.height.block_num > floor)
                    .cloned()
                    .collect();
                assert_eq!(kept, expected, "entries above the floor survive GC");
            }
            for frontier_vv in live.merge_frontiers().values() {
                assert!(frontier_vv.iter().all(|(replica, _)| replica.0 > floor));
            }

            // The durable store compacts at the same floor (clamped to
            // its snapshot) and still recovers to the live ledger.
            store.compact_up_to(floor).unwrap();
            let recovery = store
                .recover(
                    FabricValidator::new(),
                    EndorsementPolicy::all_of(["org1", "org2"]),
                )
                .unwrap();
            assert_eq!(recovery.peer.state(), live.state());
            assert_eq!(recovery.peer.chain().tip_hash(), live.chain().tip_hash());
            assert_eq!(recovery.peer.chain().height(), live.chain().height());
        });
    }
}
