//! Multi-channel sharding: channel identities, per-channel pipeline
//! configuration, cross-channel transfer records, and per-channel
//! metric rollups.
//!
//! Hyperledger Fabric's stated path to horizontal scale is running
//! many independent *channels*, each with its own ordering service,
//! world state and ledger (Androulaki et al. §3.3); peers join the
//! channels whose chaincodes they host and gossip within each channel
//! separately over one shared network. This module is the
//! configuration layer of the repository's channel subsystem:
//!
//! - [`ChannelId`] names a channel and is threaded through
//!   [`PipelineConfig`], [`RunMetrics`](crate::metrics::RunMetrics),
//!   [`Peer`](crate::peer::Peer) and durable-storage file naming, so
//!   every artifact a run produces is attributable to its channel.
//! - [`ChannelSpec`] + [`MultiChannelConfig`] describe an N-channel
//!   deployment over one base [`PipelineConfig`]: per-channel peer
//!   membership, optional per-channel block-cutting and Raft-ordering
//!   overrides, and a deterministic per-channel seed derivation under
//!   which channel 0 reproduces the single-channel seed pipeline
//!   bit-for-bit.
//! - [`TransferSpec`] / [`TransferReport`] describe the two-phase
//!   cross-channel key handoff (prepare on the source channel, commit
//!   or abort on the destination, reconciled at finalize) that the
//!   `fabriccrdt-channel` driver crate orchestrates.
//! - [`ChannelRunMetrics`] / [`MultiChannelMetrics`] roll up one
//!   [`RunMetrics`](crate::metrics::RunMetrics) per channel into
//!   aggregate throughput over the whole sharded deployment.

use std::fmt;

use fabriccrdt_sim::time::SimTime;

use crate::config::{BlockCutConfig, PipelineConfig, RaftConfig};
use crate::metrics::RunMetrics;

/// Identifies one channel of a multi-channel deployment.
///
/// Channel ids are dense small integers (the index into
/// [`MultiChannelConfig::channels`]); [`ChannelId::DEFAULT`] is the
/// channel every single-channel run lives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ChannelId(pub u32);

impl ChannelId {
    /// The channel single-channel runs (and channel 0 of multi-channel
    /// runs) live on.
    pub const DEFAULT: ChannelId = ChannelId(0);
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// Golden-ratio multiplier used to derive per-channel seeds; the same
/// constant `SimRng` mixes fork labels with.
const SEED_MIX: u64 = 0x9e37_79b9_7f4a_7c15;

/// One channel of a [`MultiChannelConfig`]: its membership and the
/// per-channel overrides applied on top of the base pipeline config.
#[derive(Debug, Clone)]
pub struct ChannelSpec {
    /// The channel's identity (its index in the deployment).
    pub id: ChannelId,
    /// Human-readable name, used in benchmark output.
    pub name: String,
    /// Global peer indices (into the flattened `org * peers_per_org +
    /// peer` numbering) that are members of this channel, sorted
    /// ascending. Every org must keep at least one member so
    /// endorsement policies remain satisfiable.
    pub members: Vec<usize>,
    /// Block-cutting override for this channel; `None` inherits the
    /// base config.
    pub block_cut: Option<BlockCutConfig>,
    /// Raft-ordering override for this channel; `None` inherits the
    /// base config's ordering backend (single orderer unless the base
    /// itself configures Raft).
    pub ordering: Option<RaftConfig>,
    /// The member peer whose commits drive this channel's pipeline
    /// (the gossip `observed_peer`); `None` picks the last member.
    pub observed_peer: Option<usize>,
}

impl ChannelSpec {
    /// A channel with full peer membership and no overrides.
    pub fn full(id: ChannelId, topology_peers: usize) -> Self {
        ChannelSpec {
            id,
            name: id.to_string(),
            members: (0..topology_peers).collect(),
            block_cut: None,
            ordering: None,
            observed_peer: None,
        }
    }

    /// The member whose commits drive the channel pipeline.
    pub fn observed(&self) -> usize {
        self.observed_peer
            .unwrap_or_else(|| *self.members.last().expect("non-empty membership"))
    }
}

/// An N-channel deployment: one base [`PipelineConfig`] plus one
/// [`ChannelSpec`] per channel. All channels share the base topology,
/// latency models and fault schedule; each gets its own orderer, world
/// state, ledger and deterministic seed lane.
#[derive(Debug, Clone)]
pub struct MultiChannelConfig {
    /// Shared topology, latency, fault and storage configuration.
    /// `base.seed` is channel 0's seed and the root of every derived
    /// channel seed.
    pub base: PipelineConfig,
    /// The channels, in [`ChannelId`] order.
    pub channels: Vec<ChannelSpec>,
}

impl MultiChannelConfig {
    /// `n` channels over `base`, each with full peer membership and no
    /// per-channel overrides.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn uniform(base: PipelineConfig, n: usize) -> Self {
        assert!(n > 0, "a deployment needs at least one channel");
        let peers = base.topology.total_peers();
        let channels = (0..n)
            .map(|c| ChannelSpec::full(ChannelId(c as u32), peers))
            .collect();
        let config = MultiChannelConfig { base, channels };
        config.validate();
        config
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// The seed channel `index` runs under. Channel 0 uses the base
    /// seed unchanged — that identity is what makes a 1-channel run
    /// reproduce the single-channel pipeline bit-for-bit — and later
    /// channels mix in their index with the golden-ratio constant.
    pub fn channel_seed(&self, index: usize) -> u64 {
        self.base.seed ^ SEED_MIX.wrapping_mul(index as u64)
    }

    /// The effective [`PipelineConfig`] for channel `index`: the base
    /// with the channel's seed, id and per-channel overrides applied.
    pub fn pipeline_for(&self, index: usize) -> PipelineConfig {
        let spec = &self.channels[index];
        let mut config = self.base.clone();
        config.seed = self.channel_seed(index);
        config.channel = spec.id;
        if let Some(block_cut) = spec.block_cut {
            config.block_cut = block_cut;
        }
        if let Some(raft) = &spec.ordering {
            config.ordering = Some(raft.clone());
        }
        if let Some(gossip) = &mut config.gossip {
            gossip.observed_peer = spec.observed();
        }
        config
    }

    /// Checks the deployment is well-formed.
    ///
    /// # Panics
    ///
    /// Panics when a channel's id does not match its position, its
    /// membership is empty, unsorted, duplicated or out of range, an
    /// org has no member, or its observed peer is not a member.
    pub fn validate(&self) {
        assert!(!self.channels.is_empty(), "at least one channel");
        let peers = self.base.topology.total_peers();
        let ppo = self.base.topology.peers_per_org;
        for (index, spec) in self.channels.iter().enumerate() {
            assert_eq!(
                spec.id,
                ChannelId(index as u32),
                "channel ids are positional"
            );
            assert!(!spec.members.is_empty(), "{}: empty membership", spec.id);
            assert!(
                spec.members.windows(2).all(|w| w[0] < w[1]),
                "{}: membership must be sorted and unique",
                spec.id
            );
            assert!(
                spec.members.iter().all(|&m| m < peers),
                "{}: member out of range",
                spec.id
            );
            for org in 0..self.base.topology.orgs {
                assert!(
                    spec.members.iter().any(|&m| m / ppo == org),
                    "{}: org {org} has no member",
                    spec.id
                );
            }
            assert!(
                spec.members.contains(&spec.observed()),
                "{}: observed peer must be a member",
                spec.id
            );
        }
    }
}

// --------------------------------------------------------- transfers

/// Identifies one cross-channel transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransferId(pub u64);

impl fmt::Display for TransferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xfer-{}", self.0)
    }
}

/// Namespace prefix of every transfer-protocol record key.
pub const TRANSFER_NS: &str = "__xfer";

impl TransferId {
    /// Key of the prepare record escrowing the value on the source
    /// channel.
    pub fn prepare_key(&self) -> String {
        format!("{TRANSFER_NS}/{}/prepare", self.0)
    }

    /// Key of the commit record on the destination channel.
    pub fn commit_key(&self) -> String {
        format!("{TRANSFER_NS}/{}/commit", self.0)
    }

    /// Key of the abort record written back on the source channel when
    /// the destination commit fails.
    pub fn abort_key(&self) -> String {
        format!("{TRANSFER_NS}/{}/abort", self.0)
    }
}

/// A requested cross-channel key handoff.
#[derive(Debug, Clone)]
pub struct TransferSpec {
    /// The key to move. Its committed value on the source channel is
    /// escrowed by the prepare phase and re-created on the destination
    /// by the commit phase.
    pub key: String,
    /// Source channel (must currently hold the key).
    pub from: ChannelId,
    /// Destination channel.
    pub to: ChannelId,
    /// When set, the destination commit transaction is submitted with
    /// a corrupted endorsement so it fails validation — exercising the
    /// abort path (the key must come back on the source channel).
    pub inject_failure: bool,
    /// When set, the destination channel's endorsers are modeled as
    /// crashed between prepare and commit: the commit transaction is
    /// never submitted at all, so finalize finds no commit record and
    /// aborts the transfer — the escrow is released back on the source
    /// with no duplicate value anywhere.
    pub destination_down: bool,
}

/// How a transfer ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferOutcome {
    /// The destination commit validated; the key now lives on the
    /// destination channel.
    Committed,
    /// The prepare or destination commit failed; the key lives on the
    /// source channel (restored by the abort record if it was
    /// escrowed).
    Aborted,
}

/// The reconciled result of one transfer, produced at finalize.
#[derive(Debug, Clone)]
pub struct TransferReport {
    /// The transfer's identity.
    pub id: TransferId,
    /// The key that moved (or stayed).
    pub key: String,
    /// Source channel.
    pub from: ChannelId,
    /// Destination channel.
    pub to: ChannelId,
    /// How the handoff ended.
    pub outcome: TransferOutcome,
}

// ----------------------------------------------------------- rollups

/// One channel's metrics within a multi-channel run.
#[derive(Debug, Clone)]
pub struct ChannelRunMetrics {
    /// Which channel these metrics belong to.
    pub channel: ChannelId,
    /// The channel's configured name.
    pub name: String,
    /// The channel pipeline's run metrics.
    pub metrics: RunMetrics,
}

/// Per-channel [`RunMetrics`] rolled up across a sharded deployment.
///
/// Channels progress concurrently in simulated time (each is an
/// independent pipeline over the shared network), so the deployment's
/// aggregate throughput is total successful transactions over the
/// *slowest* channel's makespan — the same wall-clock convention a
/// multi-channel Fabric benchmark uses.
#[derive(Debug, Clone, Default)]
pub struct MultiChannelMetrics {
    /// One entry per channel, in [`ChannelId`] order.
    pub channels: Vec<ChannelRunMetrics>,
}

impl MultiChannelMetrics {
    /// Total transactions submitted across all channels.
    pub fn total_submitted(&self) -> usize {
        self.channels.iter().map(|c| c.metrics.submitted()).sum()
    }

    /// Total successful transactions across all channels.
    pub fn total_successful(&self) -> usize {
        self.channels.iter().map(|c| c.metrics.successful()).sum()
    }

    /// The deployment makespan: the latest per-channel end time.
    pub fn end_time(&self) -> SimTime {
        self.channels
            .iter()
            .map(|c| c.metrics.end_time)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Aggregate successful throughput: total successes over the
    /// slowest channel's makespan (0.0 for an empty or zero-length
    /// run).
    pub fn aggregate_tps(&self) -> f64 {
        let span = self.end_time().as_secs_f64();
        if span == 0.0 {
            return 0.0;
        }
        self.total_successful() as f64 / span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_zero_seed_is_the_base_seed() {
        let config = MultiChannelConfig::uniform(PipelineConfig::paper(25, 42), 3);
        assert_eq!(config.channel_seed(0), 42);
        assert_ne!(config.channel_seed(1), 42);
        assert_ne!(config.channel_seed(1), config.channel_seed(2));
        let p0 = config.pipeline_for(0);
        assert_eq!(p0.seed, 42);
        assert_eq!(p0.channel, ChannelId::DEFAULT);
        let p2 = config.pipeline_for(2);
        assert_eq!(p2.channel, ChannelId(2));
        assert_eq!(p2.seed, config.channel_seed(2));
    }

    #[test]
    fn transfer_keys_are_namespaced_per_transfer() {
        let id = TransferId(7);
        assert_eq!(id.prepare_key(), "__xfer/7/prepare");
        assert_eq!(id.commit_key(), "__xfer/7/commit");
        assert_eq!(id.abort_key(), "__xfer/7/abort");
        assert_eq!(id.to_string(), "xfer-7");
    }

    #[test]
    #[should_panic(expected = "org 2 has no member")]
    fn membership_must_cover_every_org() {
        let base = PipelineConfig::paper(25, 1);
        let mut config = MultiChannelConfig::uniform(base, 1);
        // Drop org 2's peers (global indices 4 and 5 in the 3x2 paper
        // topology) from the only channel.
        config.channels[0].members.retain(|&m| m < 4);
        config.validate();
    }

    #[test]
    fn aggregate_tps_uses_slowest_channel_makespan() {
        use crate::metrics::TxRecord;
        let success = |at_ms: u64| TxRecord {
            submitted_at: SimTime::ZERO,
            committed_at: Some(SimTime::from_millis(at_ms)),
            code: Some(fabriccrdt_ledger::block::ValidationCode::Valid),
        };
        let mk = |channel: u32, end_secs: u64, successes: usize| ChannelRunMetrics {
            channel: ChannelId(channel),
            name: ChannelId(channel).to_string(),
            metrics: RunMetrics {
                records: (0..successes).map(|_| success(10)).collect(),
                end_time: SimTime::from_secs(end_secs),
                ..RunMetrics::default()
            },
        };
        let rollup = MultiChannelMetrics {
            channels: vec![mk(0, 2, 10), mk(1, 4, 30)],
        };
        assert_eq!(rollup.total_submitted(), 40);
        assert_eq!(rollup.total_successful(), 40);
        assert_eq!(rollup.end_time(), SimTime::from_secs(4));
        assert!((rollup.aggregate_tps() - 10.0).abs() < 1e-9);
        assert_eq!(MultiChannelMetrics::default().aggregate_tps(), 0.0);
    }
}
