//! Calibrated latency models for the pipeline hops.
//!
//! The paper's testbed (§7.2) is a Kubernetes cluster on 10 GbE with
//! CouchDB state databases and a Kafka ordering service. The reproduction
//! replaces wall-clock behaviour with sampled network latencies plus a
//! deterministic compute-cost model ([`crate::cost::CostModel`]). The
//! constants below are calibrated so that the simulated systems land in
//! the paper's operating regime:
//!
//! - FabricCRDT saturates at ≈250–280 successful tx/s with 25-tx blocks
//!   (paper: 267 tx/s, §7.3),
//! - vanilla Fabric's validation capacity favours larger blocks (the
//!   paper fixes 400 tx/block as Fabric's best configuration),
//! - end-to-end commit latency is "on the order of hundreds of
//!   milliseconds to seconds" (§1) before queueing sets in.
//!
//! Absolute numbers are not expected to match the authors' testbed; the
//! shapes of Figures 3–7 are (see DESIGN.md §1 and EXPERIMENTS.md).

use fabriccrdt_sim::latency::LatencyModel;
use fabriccrdt_sim::time::SimTime;

use crate::cost::CostModel;

/// Latency models for every network hop plus the compute-cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyConfig {
    /// Client → endorsing peer (proposal submission).
    pub client_to_peer: LatencyModel,
    /// Endorsing peer → client (proposal response).
    pub peer_to_client: LatencyModel,
    /// Client → ordering service (transaction submission).
    pub client_to_orderer: LatencyModel,
    /// Ordering service → committing peer (block broadcast).
    pub orderer_to_peer: LatencyModel,
    /// Compute-cost model for endorsement execution and block
    /// validation/commit.
    pub cost: CostModel,
}

impl LatencyConfig {
    /// The calibrated configuration used by every experiment.
    pub fn calibrated() -> Self {
        LatencyConfig {
            client_to_peer: LatencyModel::Normal {
                mean_secs: 0.0010,
                std_secs: 0.0002,
                min: SimTime::from_micros(200),
            },
            peer_to_client: LatencyModel::Normal {
                mean_secs: 0.0010,
                std_secs: 0.0002,
                min: SimTime::from_micros(200),
            },
            client_to_orderer: LatencyModel::Normal {
                mean_secs: 0.0012,
                std_secs: 0.0002,
                min: SimTime::from_micros(200),
            },
            orderer_to_peer: LatencyModel::Normal {
                mean_secs: 0.0020,
                std_secs: 0.0004,
                min: SimTime::from_micros(500),
            },
            cost: CostModel::calibrated(),
        }
    }

    /// A zero-latency configuration for unit tests that assert logical
    /// behaviour rather than timing.
    pub fn zero() -> Self {
        LatencyConfig {
            client_to_peer: LatencyModel::zero(),
            peer_to_client: LatencyModel::zero(),
            client_to_orderer: LatencyModel::zero(),
            orderer_to_peer: LatencyModel::zero(),
            cost: CostModel::zero(),
        }
    }
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabriccrdt_sim::rng::SimRng;

    #[test]
    fn calibrated_hops_are_sub_10ms() {
        let cfg = LatencyConfig::calibrated();
        let mut rng = SimRng::seed_from(1);
        for model in [
            &cfg.client_to_peer,
            &cfg.peer_to_client,
            &cfg.client_to_orderer,
            &cfg.orderer_to_peer,
        ] {
            for _ in 0..100 {
                let t = model.sample(&mut rng);
                assert!(t < SimTime::from_millis(10), "{t}");
                assert!(t > SimTime::ZERO);
            }
        }
    }

    #[test]
    fn zero_config_is_zero() {
        let cfg = LatencyConfig::zero();
        let mut rng = SimRng::seed_from(1);
        assert_eq!(cfg.client_to_peer.sample(&mut rng), SimTime::ZERO);
        assert_eq!(cfg.orderer_to_peer.sample(&mut rng), SimTime::ZERO);
    }
}
