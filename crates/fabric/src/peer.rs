//! The committing peer.
//!
//! Peers perform two validations on incoming blocks (§2.1, step 3):
//! endorsement-policy validation (signatures verified, policy satisfied)
//! and the validator-specific stage (MVCC for Fabric, merge for
//! FabricCRDT), then append the block — valid and invalid transactions
//! alike — and update the world state with the valid write sets.
//!
//! Processing is split into [`Peer::process_block`] (pure computation
//! against the current state, producing a [`StagedBlock`]) and
//! [`Peer::commit`] (atomically installing the staged state). The
//! simulator computes at processing *start*, schedules the commit at
//! `start + cost`, and endorsements arriving in between correctly observe
//! the pre-block state.
//!
//! # Cross-block pipelining and the lockless read path
//!
//! Under [`ValidationPipeline::Pipelined`], processing further splits
//! into [`Peer::prevalidate_ahead`] (submit block N+1's pure
//! per-transaction stage to the worker pool) and [`Peer::finish_block`]
//! (join it, then run the conflict-chain finalize) — so N+1's
//! signature checking runs on pool threads *while* N's finalize commits
//! on the calling thread ([`Peer::finish_block_with_next`] chains the
//! two). The world state lives behind an `Arc` pointer that
//! [`Peer::commit`] swaps ([`Peer::state`] is the published epoch), so
//! the overlapped stage — including the advisory
//! [`BlockValidator::speculative_read_check`] — reads plain `BTreeMap`
//! lookups through the pointer and never takes a lock; the
//! authoritative MVCC recheck at finalize catches any read that raced a
//! commit. Every stage stays a pure function of (transaction,
//! committed-id context), so pipelined runs are value-identical to
//! sequential ones — only wall-clock changes.

use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use fabriccrdt_crypto::KeyPair;
use fabriccrdt_jsoncrdt::clock::{OpId, ReplicaId, VersionVector};
use fabriccrdt_ledger::block::{Block, ValidationCode};
use fabriccrdt_ledger::chain::{Blockchain, ChainError};
use fabriccrdt_ledger::codec;
use fabriccrdt_ledger::history::HistoryDb;
use fabriccrdt_ledger::store::LedgerSnapshot;
use fabriccrdt_ledger::transaction::{Transaction, TxId};
use fabriccrdt_ledger::version::Height;
use fabriccrdt_ledger::worldstate::WorldState;

/// A serialized peer ledger: world-state snapshot plus the full block
/// chain, as written by [`Peer::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerSnapshot {
    /// Encoded world state (`fabriccrdt_ledger::codec::encode_state`).
    pub state: Vec<u8>,
    /// Encoded blockchain (`fabriccrdt_ledger::codec::encode_chain`).
    pub chain: Vec<u8>,
}

use crate::channel::ChannelId;
use crate::cost::ValidationWork;
use crate::metrics::PipelineMetrics;
use crate::pipeline::{PendingMap, PipelineRunner, ValidationPipeline};
use crate::policy::EndorsementPolicy;
use crate::schedule::conflict_chains;
use crate::state::ShardedState;
use crate::validator::{BlockValidator, ChainOutcome};

/// Host wall-clock spans of the two `process_block` stages, used by
/// the commit-path benchmark to attribute speedup per stage. Timings
/// never feed the cost model or any validation outcome, so they cannot
/// perturb simulation determinism.
///
/// Each stage is recorded as a *span* — start and end offsets (seconds
/// since the peer was constructed) — rather than a bare duration,
/// because under [`ValidationPipeline::Pipelined`] the stages of
/// consecutive blocks are **not disjoint**: block N+1's pre-validation
/// runs concurrently with block N's finalize, so summing durations
/// double-counts the overlapped window. [`StageTimings::overlap_secs`]
/// reports that window explicitly (the intersection of this block's
/// pre-validation span with the previous block's finalize span), so
/// consumers can derive busy wall time as
/// `pre_validate_secs + finalize_secs - overlap_secs`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimings {
    /// Duplicate detection + endorsement verification (pipeline
    /// fan-out stage): `pre_end - pre_start`.
    pub pre_validate_secs: f64,
    /// MVCC/merge validation, state commit and re-seal (conflict-chain
    /// stage): `finalize_end - finalize_start`.
    pub finalize_secs: f64,
    /// Pre-validation span start, seconds since peer construction.
    pub pre_start: f64,
    /// Pre-validation span end (the join, under pipelining).
    pub pre_end: f64,
    /// Finalize span start, seconds since peer construction.
    pub finalize_start: f64,
    /// Finalize span end.
    pub finalize_end: f64,
    /// Seconds this block's pre-validation span overlapped the
    /// *previous* block's finalize span — zero whenever stages ran
    /// back-to-back (sequential and plain-parallel modes).
    pub overlap_secs: f64,
}

/// A fully validated block plus the world state it produces, awaiting
/// [`Peer::commit`].
#[derive(Debug)]
pub struct StagedBlock {
    /// The block with validation codes filled in.
    pub block: Block,
    /// World state after applying the valid write sets.
    pub new_state: WorldState,
    /// Work performed (drives the cost model).
    pub work: ValidationWork,
    /// Host wall-clock spent per processing stage.
    pub timings: StageTimings,
}

impl StagedBlock {
    /// Ids of every transaction in the staged block — the duplicate
    /// context a pipelined driver must thread into
    /// [`Peer::prevalidate_ahead`] for blocks prepared while this one
    /// is still in flight ([`Peer::commit`] will extend the committed
    /// set with *all* of them, valid and failed alike).
    pub fn tx_ids(&self) -> impl Iterator<Item = TxId> + '_ {
        self.block.transactions.iter().map(|t| t.id)
    }
}

/// Block N+1 mid-flight: its pure pre-validation stage has been
/// started (possibly on the worker pool, concurrently with block N's
/// finalize) but not yet joined. Redeem with [`Peer::finish_block`] —
/// in arrival order, after every earlier block has been committed.
#[derive(Debug)]
pub struct PreparedBlock {
    /// The block, transactions taken out (left in place for tampered
    /// blocks, which skip pre-validation wholesale).
    block: Block,
    /// The transactions, shared with the in-flight pool job.
    transactions: Arc<Vec<Transaction>>,
    /// The in-flight endorsement map; `None` marks a tampered block.
    pending: Option<PendingMap<(Option<ValidationCode>, u64)>>,
    /// Advisory lockless read-check verdicts against the state epoch
    /// published when this block was prepared (overlapped prepares
    /// only); reconciled at finalize into
    /// [`PipelineMetrics::speculation_confirmed`] /
    /// [`PipelineMetrics::speculation_overturned`].
    speculation: Option<Vec<bool>>,
    /// Pre-validation span start (seconds since peer construction).
    pre_start: f64,
}

impl PreparedBlock {
    /// Ids of every transaction in the prepared block (see
    /// [`StagedBlock::tx_ids`] — same duplicate-context contract).
    pub fn tx_ids(&self) -> impl Iterator<Item = TxId> + '_ {
        // Exactly one of the two is nonempty: `block.transactions`
        // for tampered blocks, the shared `Arc` otherwise.
        self.block
            .transactions
            .iter()
            .chain(self.transactions.iter())
            .map(|t| t.id)
    }
}

/// A [`PreparedBlock`] whose pre-validation has been joined; input to
/// the finalize half of [`Peer::finish_block`].
struct JoinedBlock {
    block: Block,
    transactions: Arc<Vec<Transaction>>,
    pre: Vec<Option<ValidationCode>>,
    sigs_verified: u64,
    tampered: bool,
    speculation: Option<Vec<bool>>,
    pre_start: f64,
    pre_end: f64,
}

/// A committing peer.
///
/// All peers of the simulated network execute identical deterministic
/// logic over an identical block stream, so one `Peer` instance stands in
/// for every replica; per-peer network latencies are modelled separately
/// by the simulation (DESIGN.md §1).
#[derive(Debug)]
pub struct Peer<V> {
    /// The committed world state, published as an immutable epoch:
    /// [`Peer::commit`] swaps the pointer, it never mutates in place,
    /// so overlapped pre-validation reads the `Arc` without any lock
    /// and a clone of the pointer stays valid (and byte-stable) for as
    /// long as a reader holds it.
    state: Arc<WorldState>,
    chain: Blockchain,
    history: HistoryDb,
    committed_ids: HashSet<TxId>,
    /// Per-key CRDT merge frontier: for key `k`, replica `b` maps to
    /// the number of successful CRDT writes block `b` merged into `k`
    /// (see [`Peer::merge_frontiers`]). Deterministic from block
    /// content, so every replica derives the same vectors.
    merge_frontiers: BTreeMap<String, VersionVector>,
    // Arc because parallel stages hand the validator to 'static pool
    // workers; sequential peers never clone it.
    validator: Arc<V>,
    policy: EndorsementPolicy,
    runner: PipelineRunner,
    /// Which channel this replica serves; [`ChannelId::DEFAULT`] for
    /// single-channel runs. Purely a label — validation logic is
    /// channel-agnostic — but it keeps multi-channel replicas
    /// attributable in debug output and assertions.
    channel: ChannelId,
    /// Wall-clock origin for [`StageTimings`] span offsets.
    epoch: Instant,
    /// Finalize span of the most recently finished block, for
    /// computing [`StageTimings::overlap_secs`] of the next one.
    prev_finalize_span: Option<(f64, f64)>,
    /// Overlap/speculation counters, drained by
    /// [`Peer::take_pipeline_metrics`]. Scheduling-descriptive only —
    /// never feeds a validation outcome.
    stats: PipelineMetrics,
}

/// Folds a committed, validated block into the per-key merge
/// frontiers: for each key, block `b` contributes operations
/// `1..=m @ ReplicaId(b)` where `m` is the number of successful CRDT
/// (non-delete) writes the block merged into that key. Counters are
/// contiguous per `(key, block)` by construction, so
/// [`VersionVector::observe`] never reports a gap.
fn absorb_frontiers(frontiers: &mut BTreeMap<String, VersionVector>, block: &Block) {
    let mut merged_per_key: BTreeMap<&str, u64> = BTreeMap::new();
    for (tx, code) in block.transactions.iter().zip(&block.validation_codes) {
        if !code.is_success() {
            continue;
        }
        for (key, entry) in tx.rwset.writes.iter() {
            if entry.is_crdt && !entry.is_delete {
                *merged_per_key.entry(key).or_insert(0) += 1;
            }
        }
    }
    for (key, merged) in merged_per_key {
        let frontier = frontiers.entry(key.to_string()).or_default();
        for counter in 1..=merged {
            let observed = frontier.observe(OpId::new(counter, ReplicaId(block.header.number)));
            debug_assert!(observed, "per-block frontier counters are contiguous");
        }
    }
}

impl<V: BlockValidator> Peer<V> {
    /// Creates a peer with the given validation strategy and endorsement
    /// policy.
    pub fn new(validator: V, policy: EndorsementPolicy) -> Self {
        // Every peer's chain starts with the genesis block (block 0);
        // ordered transaction blocks arrive numbered from 1.
        let mut chain = Blockchain::new();
        chain
            .append(Block::genesis())
            .expect("genesis extends the empty chain");
        Peer {
            state: Arc::new(WorldState::new()),
            chain,
            history: HistoryDb::new(),
            committed_ids: HashSet::new(),
            merge_frontiers: BTreeMap::new(),
            validator: Arc::new(validator),
            policy,
            runner: PipelineRunner::new(ValidationPipeline::Sequential),
            channel: ChannelId::DEFAULT,
            epoch: Instant::now(),
            prev_finalize_span: None,
            stats: PipelineMetrics::default(),
        }
    }

    /// The channel this replica serves.
    pub fn channel(&self) -> ChannelId {
        self.channel
    }

    /// Labels this replica with its channel (builder style).
    pub fn with_channel(mut self, channel: ChannelId) -> Self {
        self.channel = channel;
        self
    }

    /// Re-labels this replica's channel in place (used when a restored
    /// or recovered peer re-joins its channel).
    pub fn set_channel(&mut self, channel: ChannelId) {
        self.channel = channel;
    }

    /// Selects the validation pipeline (builder style). The default,
    /// [`ValidationPipeline::Sequential`], is byte-for-byte the seed
    /// commit path; `Parallel` is value-identical (see
    /// `crates/fabric/src/pipeline.rs` for the determinism argument) and
    /// only changes wall-clock time. Parallel runners spawn their
    /// persistent worker pool here, once per peer.
    pub fn with_pipeline(mut self, pipeline: ValidationPipeline) -> Self {
        self.set_pipeline(pipeline);
        self
    }

    /// Replaces the validation pipeline in place, re-binding the worker
    /// pool (the old pool's threads join on drop).
    pub fn set_pipeline(&mut self, pipeline: ValidationPipeline) {
        self.runner = PipelineRunner::new(pipeline);
    }

    /// The active validation pipeline.
    pub fn pipeline(&self) -> ValidationPipeline {
        self.runner.mode()
    }

    /// The current world state (committed blocks only). This is the
    /// published read epoch: the returned reference points at an
    /// immutable `Arc`'d snapshot that [`Peer::commit`] replaces
    /// wholesale, so reads through it never contend with a commit.
    pub fn state(&self) -> &WorldState {
        &self.state
    }

    /// Drains the overlap/speculation counters accumulated since the
    /// last call (or construction). Scheduling-descriptive only;
    /// excluded from [`crate::metrics::RunMetrics`] equality.
    pub fn take_pipeline_metrics(&mut self) -> PipelineMetrics {
        std::mem::take(&mut self.stats)
    }

    /// The peer's copy of the blockchain.
    pub fn chain(&self) -> &Blockchain {
        &self.chain
    }

    /// The key-history index (`GetHistoryForKey`), derived from
    /// committed blocks.
    pub fn history(&self) -> &HistoryDb {
        &self.history
    }

    /// The validation strategy.
    pub fn validator(&self) -> &V {
        &self.validator
    }

    /// Seeds a key directly into the world state at genesis height —
    /// §7.2: "we start with an empty ledger and populate the ledger with
    /// keys that are read during the experiment".
    pub fn seed_state(&mut self, key: impl Into<String>, value: Vec<u8>) {
        Arc::make_mut(&mut self.state).put(key.into(), value, Height::genesis());
    }

    /// Serializes the peer's ledger (state + chain) for persistence or
    /// bootstrapping another replica.
    pub fn snapshot(&self) -> PeerSnapshot {
        PeerSnapshot {
            state: codec::encode_state(&self.state),
            chain: codec::encode_chain(&self.chain),
        }
    }

    /// Rebuilds a peer from a snapshot: the chain is decoded and
    /// integrity-verified, the duplicate-id set and history index are
    /// re-derived from it, and the world state is installed.
    ///
    /// # Errors
    ///
    /// Returns a [`codec::DecodeError`] for malformed snapshots or
    /// broken hash chains.
    pub fn restore(
        validator: V,
        policy: EndorsementPolicy,
        snapshot: &PeerSnapshot,
    ) -> Result<Self, codec::DecodeError> {
        let chain = codec::decode_chain(&snapshot.chain)?;
        let state = codec::decode_state(&snapshot.state)?;
        let mut committed_ids = HashSet::new();
        let mut history = HistoryDb::new();
        let mut merge_frontiers = BTreeMap::new();
        for block in chain.iter() {
            committed_ids.extend(block.transactions.iter().map(|t| t.id));
            history.record_block(block);
            absorb_frontiers(&mut merge_frontiers, block);
        }
        Ok(Peer {
            state: Arc::new(state),
            chain,
            history,
            committed_ids,
            merge_frontiers,
            validator: Arc::new(validator),
            policy,
            runner: PipelineRunner::new(ValidationPipeline::Sequential),
            channel: ChannelId::DEFAULT,
            epoch: Instant::now(),
            prev_finalize_span: None,
            stats: PipelineMetrics::default(),
        })
    }

    /// The per-key CRDT merge frontiers ([`VersionVector`] per key):
    /// `frontier(k).entry(ReplicaId(b)) == m` means block `b` merged
    /// `m` successful CRDT writes into key `k` on this peer. Derived
    /// deterministically from committed blocks, so identical across
    /// replicas at equal height — which is what lets gossip acknowledge
    /// "merged through block `b`" by shipping a single number and GC
    /// history below the cluster-wide minimum.
    pub fn merge_frontiers(&self) -> &BTreeMap<String, VersionVector> {
        &self.merge_frontiers
    }

    /// Exports a [`LedgerSnapshot`] at the current tip: encoded world
    /// state, history index, committed transaction ids (sorted) and
    /// merge frontiers, anchored at the tip block's number and hash.
    pub fn ledger_snapshot(&self) -> LedgerSnapshot {
        let mut ids: Vec<TxId> = self.committed_ids.iter().copied().collect();
        ids.sort();
        LedgerSnapshot {
            last_block: self.chain.height().saturating_sub(1),
            tip_hash: self.chain.tip_hash(),
            state: codec::encode_state(&self.state),
            history: codec::encode_history(&self.history),
            committed_ids: codec::encode_txids(&ids),
            frontiers: crate::storage::encode_frontiers(&self.merge_frontiers),
        }
    }

    /// Rebuilds a peer from a [`LedgerSnapshot`] alone: world state,
    /// history, duplicate-id set and merge frontiers are installed
    /// directly, and the chain *resumes* at the snapshot tip — blocks
    /// at or below `last_block` are not held. Blocks committed after
    /// the snapshot are applied by [`Peer::replay_block`] as usual.
    ///
    /// # Errors
    ///
    /// Returns a [`codec::DecodeError`] for malformed snapshot
    /// components.
    pub fn restore_from_snapshot(
        validator: V,
        policy: EndorsementPolicy,
        snapshot: &LedgerSnapshot,
    ) -> Result<Self, codec::DecodeError> {
        let state = codec::decode_state(&snapshot.state)?;
        let history = codec::decode_history(&snapshot.history)?;
        let ids = codec::decode_txids(&snapshot.committed_ids)?;
        let merge_frontiers = crate::storage::decode_frontiers(&snapshot.frontiers)?;
        Ok(Peer {
            state: Arc::new(state),
            chain: Blockchain::resume(snapshot.last_block + 1, snapshot.tip_hash),
            history,
            committed_ids: ids.into_iter().collect(),
            merge_frontiers,
            validator: Arc::new(validator),
            policy,
            runner: PipelineRunner::new(ValidationPipeline::Sequential),
            channel: ChannelId::DEFAULT,
            epoch: Instant::now(),
            prev_finalize_span: None,
            stats: PipelineMetrics::default(),
        })
    }

    /// Garbage-collects operation history at or below `block_num`
    /// (which must be a height every replica has acknowledged merging
    /// past — see `storage::AckFrontier`): history entries committed at
    /// or below it are dropped, and frontier marks for those blocks are
    /// pruned. The in-memory chain is left intact (the durable store
    /// compacts separately), so ledger byte-identity against
    /// non-GC'd peers is checked on state + chain, not history.
    /// Returns the number of history entries dropped.
    pub fn prune_up_to(&mut self, block_num: u64) -> usize {
        let dropped = self.history.prune_up_to(block_num);
        self.merge_frontiers.retain(|_, frontier| {
            frontier.retain(|replica, _| replica.0 > block_num);
            !frontier.is_empty()
        });
        dropped
    }

    /// Replays an already-validated block during catch-up: verifies the
    /// hash chain and data hash, then applies the write sets of the
    /// transactions whose *recorded* validation codes are successful —
    /// exactly §2.1's "executing all valid transactions included in the
    /// blockchain starting from the genesis block results in the current
    /// state". Endorsements are not re-verified: FabricCRDT's Algorithm 1
    /// rewrites CRDT write values after endorsement, so replayed payloads
    /// no longer match the original signatures; the hash chain (re-sealed
    /// deterministically by every committing peer) is the integrity
    /// anchor instead.
    ///
    /// # Errors
    ///
    /// Returns a [`ChainError`] if the block does not extend this peer's
    /// chain or its validation codes are missing.
    pub fn replay_block(&mut self, block: Block) -> Result<(), ChainError> {
        if block.validation_codes.len() != block.transactions.len() {
            return Err(ChainError::MissingValidationCodes);
        }
        let state = Arc::make_mut(&mut self.state);
        for (tx_num, (tx, code)) in block
            .transactions
            .iter()
            .zip(&block.validation_codes)
            .enumerate()
        {
            if !code.is_success() {
                continue;
            }
            let height = Height::new(block.header.number, tx_num as u64);
            for (key, entry) in tx.rwset.writes.iter() {
                if entry.is_delete {
                    state.delete(key);
                } else {
                    state.put(key.clone(), entry.value.clone(), height);
                }
            }
        }
        let ids: Vec<TxId> = block.transactions.iter().map(|t| t.id).collect();
        self.chain.append(block)?;
        let tip = self.chain.tip().expect("chain nonempty");
        self.history.record_block(tip);
        absorb_frontiers(&mut self.merge_frontiers, tip);
        self.committed_ids.extend(ids);
        Ok(())
    }

    /// Validates a block against the current state without committing.
    ///
    /// Performs duplicate-id detection, endorsement verification
    /// (signatures really are checked) and the validator stage, all
    /// against a copy of the state; the result is installed later by
    /// [`Peer::commit`]. Equivalent to [`Peer::prevalidate`]
    /// immediately followed by [`Peer::finish_block`].
    pub fn process_block(&mut self, block: Block) -> StagedBlock {
        let prep = self.prepare_block(block, &HashSet::new(), false);
        self.finish_block(prep)
    }

    /// Starts the pure pre-validation stage of a block whose
    /// predecessors have all committed (no extra duplicate context).
    pub fn prevalidate(&mut self, block: Block) -> PreparedBlock {
        self.prepare_block(block, &HashSet::new(), false)
    }

    /// Starts the pure pre-validation stage of a block *ahead of* its
    /// predecessors' finalize — the overlap window of
    /// [`ValidationPipeline::Pipelined`]. Under a pipelined runner the
    /// per-transaction work is submitted to the worker pool and runs
    /// concurrently with whatever the caller does next (block N's
    /// finalize); on other runners (or single-thread hardware) it is
    /// deferred to the join inside [`Peer::finish_block`] —
    /// value-identical either way.
    ///
    /// `extra_ids` must hold the ids of **every** transaction of every
    /// in-flight block (staged or prepared, valid and failed alike):
    /// [`Peer::commit`] extends the duplicate set with all of them, so
    /// this is exactly the context `committed_ids` would have carried
    /// had the predecessors already committed. With that, duplicate
    /// verdicts — and therefore `sigs_verified` and the simulated
    /// block cost — are identical to the sequential schedule.
    pub fn prevalidate_ahead(&mut self, block: Block, extra_ids: &HashSet<TxId>) -> PreparedBlock {
        self.prepare_block(block, extra_ids, true)
    }

    /// Joins a block's pre-validation and runs its finalize. Blocks
    /// must be finished in arrival order, each after its predecessors
    /// committed (the finalize validates against — and the re-seal
    /// links to — the committed tip).
    pub fn finish_block(&mut self, prep: PreparedBlock) -> StagedBlock {
        let joined = self.join_prevalidation(prep);
        self.finalize_joined(joined)
    }

    /// The pipelined chaining step: joins `prep`'s pre-validation
    /// (freeing the worker pool), submits `next`'s pre-validation to
    /// the pool, then runs `prep`'s finalize on the calling thread —
    /// so `next`'s signature checking proceeds concurrently with the
    /// finalize. The duplicate context for `next` (the ids of `prep`'s
    /// transactions) is threaded automatically; callers with deeper
    /// in-flight queues use [`Peer::prevalidate_ahead`] directly.
    pub fn finish_block_with_next(
        &mut self,
        prep: PreparedBlock,
        next: Block,
    ) -> (StagedBlock, PreparedBlock) {
        let joined = self.join_prevalidation(prep);
        let extra: HashSet<TxId> = joined
            .block
            .transactions
            .iter()
            .chain(joined.transactions.iter())
            .map(|t| t.id)
            .collect();
        let next_prep = self.prevalidate_ahead(next, &extra);
        let staged = self.finalize_joined(joined);
        (staged, next_prep)
    }

    /// The shared prepare half: duplicate detection, then the pure
    /// per-transaction endorsement stage, started via
    /// [`PipelineRunner::map_ordered_bg`].
    fn prepare_block(
        &mut self,
        mut block: Block,
        extra_ids: &HashSet<TxId>,
        overlapped: bool,
    ) -> PreparedBlock {
        // Integrity pre-check: the data hash of a block fresh from the
        // orderer must cover its transactions. A mismatch here — before
        // any validator-driven rewrite — means tampering in transit;
        // the whole block is rejected and nothing commits. (The later
        // re-seal only legitimizes the peer's *own* deterministic
        // merge rewrites.)
        if !block.data_hash_is_valid() {
            return PreparedBlock {
                block,
                transactions: Arc::new(Vec::new()),
                pending: None,
                speculation: None,
                pre_start: 0.0,
            };
        }
        let pre_start = self.offset_of(Instant::now());

        // Stage 1 (sequential, cheap): duplicate-id detection. This is
        // the one cross-transaction dependency in pre-validation — a
        // transaction is a duplicate relative to everything committed
        // (including in-flight predecessors, via `extra_ids`) *and*
        // everything earlier in this block — so it runs before the
        // fan-out, keeping the per-transaction stage below pure.
        let mut seen_in_block: HashSet<TxId> = HashSet::new();
        let duplicate: Vec<bool> = block
            .transactions
            .iter()
            .map(|tx| {
                self.committed_ids.contains(&tx.id)
                    || extra_ids.contains(&tx.id)
                    || !seen_in_block.insert(tx.id)
            })
            .collect();

        // Stage 2 (pipeline fan-out): endorsement validation — every
        // signature must verify and the endorsing organizations must
        // satisfy the policy. Each transaction's outcome is a pure
        // function of the transaction itself, so the pipeline may
        // evaluate them on worker threads; the join reassembles results
        // in block order. Duplicates short-circuit *before* any
        // signature is checked (exactly as the seed's early return did),
        // so `sigs_verified` — and with it the simulated block cost — is
        // identical under every pipeline. Pool workers are 'static, so
        // shared context travels by `Arc`/clone rather than borrow.
        let transactions = Arc::new(std::mem::take(&mut block.transactions));
        let validator = Arc::clone(&self.validator);
        let policy = self.policy.clone();
        let pending = self.runner.map_ordered_bg(&transactions, move |i, tx| {
            if duplicate[i] {
                return (Some(ValidationCode::DuplicateTxId), 0);
            }
            // Warm validator-side caches (e.g. CRDT payload decode)
            // off the sequential critical path; value-neutral.
            validator.prepare(tx);
            let payload = tx.response_payload();
            let mut sigs = 0u64;
            let mut valid_orgs = Vec::new();
            for endorsement in &tx.endorsements {
                sigs += 1;
                let keypair = KeyPair::derive(endorsement.endorser.clone());
                if keypair.verify(&payload, &endorsement.signature).is_ok() {
                    valid_orgs.push(endorsement.endorser.org.clone());
                }
            }
            if !policy.is_satisfied_by(&valid_orgs) {
                return (Some(ValidationCode::EndorsementPolicyFailure), sigs);
            }
            (None, sigs)
        });

        // Lockless speculative read check (overlapped prepares only):
        // plain map lookups through the published `Arc` epoch, running
        // on the calling thread while the pool verifies signatures. The
        // verdicts are advisory — the authoritative MVCC check at
        // finalize re-runs against the committed state — so they feed
        // counters, never validation codes.
        let speculation = if overlapped {
            self.stats.blocks_overlapped += 1;
            let mut verdicts = Vec::with_capacity(transactions.len());
            for tx in transactions.iter() {
                self.stats.speculative_reads_checked += tx.rwset.reads.len() as u64;
                verdicts.push(self.validator.speculative_read_check(tx, &self.state));
            }
            Some(verdicts)
        } else {
            None
        };

        PreparedBlock {
            block,
            transactions,
            pending: Some(pending),
            speculation,
            pre_start,
        }
    }

    /// Joins the in-flight pre-validation of a prepared block.
    fn join_prevalidation(&mut self, prep: PreparedBlock) -> JoinedBlock {
        let PreparedBlock {
            block,
            transactions,
            pending,
            speculation,
            pre_start,
        } = prep;
        let Some(pending) = pending else {
            return JoinedBlock {
                block,
                transactions,
                pre: Vec::new(),
                sigs_verified: 0,
                tampered: true,
                speculation: None,
                pre_start,
                pre_end: pre_start,
            };
        };
        let endorsed = self.runner.join(pending);
        let mut sigs_verified = 0u64;
        let pre: Vec<Option<ValidationCode>> = endorsed
            .into_iter()
            .map(|(code, sigs)| {
                sigs_verified += sigs;
                code
            })
            .collect();
        let pre_end = self.offset_of(Instant::now());
        JoinedBlock {
            block,
            transactions,
            pre,
            sigs_verified,
            tampered: false,
            speculation,
            pre_start,
            pre_end,
        }
    }

    /// The finalize half: conflict-chain (or sequential) validation and
    /// state commit, re-seal, speculation reconciliation and span
    /// accounting.
    fn finalize_joined(&mut self, joined: JoinedBlock) -> StagedBlock {
        let JoinedBlock {
            mut block,
            transactions,
            pre,
            sigs_verified,
            tampered,
            speculation,
            pre_start,
            pre_end,
        } = joined;
        if tampered {
            block.validation_codes = vec![ValidationCode::TamperedBlock; block.transactions.len()];
            block.header.previous_hash = self.chain.tip_hash();
            block.header.data_hash = Block::compute_data_hash(&block.transactions);
            return StagedBlock {
                block,
                new_state: (*self.state).clone(),
                work: ValidationWork::default(),
                timings: StageTimings::default(),
            };
        }
        let finalize_start = self.offset_of(Instant::now());
        let (new_state, mut work) = self.finalize(&mut block, transactions, &pre);
        work.sigs_verified = sigs_verified;

        // Re-seal when needed. FabricCRDT's Algorithm 1 (line 22) rewrites
        // CRDT write-set values with the merged result, which changes the
        // block's data hash relative to what the orderer sealed; and once
        // one block is re-sealed, every later block must re-link to the
        // peer's tip. All peers merge deterministically in block order, so
        // every replica re-seals identically and chains stay consistent.
        if !block.data_hash_is_valid() || block.header.previous_hash != self.chain.tip_hash() {
            block.header.previous_hash = self.chain.tip_hash();
            block.header.data_hash = Block::compute_data_hash(&block.transactions);
        }

        // Reconcile speculative verdicts against the state this
        // finalize actually validated on (reads are never rewritten, so
        // the post-finalize transactions carry the original read sets).
        if let Some(spec) = speculation {
            for (tx, predicted) in block.transactions.iter().zip(&spec) {
                if self.validator.speculative_read_check(tx, &self.state) == *predicted {
                    self.stats.speculation_confirmed += 1;
                } else {
                    self.stats.speculation_overturned += 1;
                }
            }
        }

        let finalize_end = self.offset_of(Instant::now());
        let overlap_secs = match self.prev_finalize_span {
            Some((prev_start, prev_end)) => {
                (pre_end.min(prev_end) - pre_start.max(prev_start)).max(0.0)
            }
            None => 0.0,
        };
        self.prev_finalize_span = Some((finalize_start, finalize_end));

        StagedBlock {
            block,
            new_state,
            work,
            timings: StageTimings {
                pre_validate_secs: pre_end - pre_start,
                finalize_secs: finalize_end - finalize_start,
                pre_start,
                pre_end,
                finalize_start,
                finalize_end,
                overlap_secs,
            },
        }
    }

    /// Seconds since this peer was constructed, for span offsets.
    fn offset_of(&self, instant: Instant) -> f64 {
        instant.duration_since(self.epoch).as_secs_f64()
    }

    /// The finalize stage: MVCC/merge validation and state commit.
    ///
    /// Sequential runners (and blocks whose conflict graph is a single
    /// chain) take the reference path — the untouched seed
    /// [`BlockValidator::validate_and_commit`] over a cloned
    /// `WorldState`. Parallel runners instead bucket the block into
    /// key-disjoint conflict chains ([`conflict_chains`]), finalize the
    /// chains concurrently against a [`ShardedState`], and reassemble
    /// codes, write-value rewrites and work counters in block order —
    /// value-identical by construction (DESIGN.md §4.10), and asserted
    /// against a sequential shadow run in debug builds.
    fn finalize(
        &self,
        block: &mut Block,
        transactions: Arc<Vec<Transaction>>,
        pre: &[Option<ValidationCode>],
    ) -> (WorldState, ValidationWork) {
        let chains = conflict_chains(&transactions, pre);
        if !self.runner.parallel_finalize() || chains.len() <= 1 {
            block.transactions =
                Arc::try_unwrap(transactions).expect("pre-validation released its clones");
            let mut new_state = (*self.state).clone();
            let work = self
                .validator
                .validate_and_commit(block, &mut new_state, pre);
            return (new_state, work);
        }

        #[cfg(debug_assertions)]
        let shadow_txs: Vec<Transaction> = transactions.as_ref().clone();

        let number = block.header.number;
        // Borrow the published epoch as the sharded base — zero clones
        // here; `into_world` below clones (the epoch stays shared with
        // `self.state` and any overlapped readers).
        let sharded = Arc::new(ShardedState::from_shared(Arc::clone(&self.state)));
        let chains = Arc::new(chains);
        let validator = Arc::clone(&self.validator);
        let job_txs = Arc::clone(&transactions);
        let job_state = Arc::clone(&sharded);
        let outcomes: Vec<ChainOutcome> = self.runner.map_ordered(&chains, move |_, chain| {
            validator.finalize_chain(number, &job_txs, chain, &job_state)
        });

        // Reassemble block order. Chains partition the undecided
        // transactions, so exactly one outcome decides each of them.
        let mut codes: Vec<Option<ValidationCode>> = pre.to_vec();
        let mut transactions =
            Arc::try_unwrap(transactions).expect("pool released its transaction clones");
        let mut work = ValidationWork::default();
        for outcome in outcomes {
            for (index, code) in outcome.codes {
                debug_assert!(codes[index].is_none(), "one code per transaction");
                codes[index] = Some(code);
            }
            for (index, key, value) in outcome.rewrites {
                let updated = transactions[index].rwset.writes.update_value(&key, value);
                debug_assert!(updated, "rewrite targets an existing write entry");
            }
            work.absorb(outcome.work);
        }
        block.validation_codes = codes
            .into_iter()
            .map(|code| code.expect("chains partition the undecided transactions"))
            .collect();
        block.transactions = transactions;
        let new_state = Arc::try_unwrap(sharded)
            .expect("pool released its state clones")
            .into_world();

        // Debug-build shadow run: the parallel finalize must match the
        // sequential reference on every block it processes.
        #[cfg(debug_assertions)]
        {
            let mut shadow_block = block.clone();
            shadow_block.transactions = shadow_txs;
            shadow_block.validation_codes = Vec::new();
            let mut shadow_state = (*self.state).clone();
            let shadow_work =
                self.validator
                    .validate_and_commit(&mut shadow_block, &mut shadow_state, pre);
            debug_assert_eq!(shadow_block.validation_codes, block.validation_codes);
            debug_assert_eq!(shadow_block.transactions, block.transactions);
            debug_assert_eq!(shadow_state, new_state);
            debug_assert_eq!(shadow_work, work);
        }

        (new_state, work)
    }

    /// Installs a staged block: world state, blockchain, duplicate set.
    ///
    /// # Errors
    ///
    /// Returns a [`ChainError`] if the block does not extend this peer's
    /// chain (wrong number or broken hash chain); the peer is unchanged.
    pub fn commit(&mut self, staged: StagedBlock) -> Result<&Block, ChainError> {
        let StagedBlock {
            block, new_state, ..
        } = staged;
        // Record ids before moving the block into the chain.
        let ids: Vec<TxId> = block.transactions.iter().map(|t| t.id).collect();
        self.chain.append(block)?;
        let tip = self.chain.tip().expect("chain nonempty after append");
        self.history.record_block(tip);
        absorb_frontiers(&mut self.merge_frontiers, tip);
        // Epoch swap: readers holding the old `Arc` keep a consistent
        // pre-block snapshot; new reads see the committed state.
        self.state = Arc::new(new_state);
        self.committed_ids.extend(ids);
        Ok(self.chain.tip().expect("chain nonempty after append"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validator::FabricValidator;
    use fabriccrdt_crypto::Identity;
    use fabriccrdt_ledger::rwset::ReadWriteSet;
    use fabriccrdt_ledger::transaction::{Endorsement, Transaction};

    fn endorse(tx: &mut Transaction, orgs: &[&str]) {
        let payload = tx.response_payload();
        for (i, org) in orgs.iter().enumerate() {
            let kp = KeyPair::derive(Identity::new(format!("peer{i}"), *org));
            tx.endorsements.push(Endorsement {
                endorser: kp.identity().clone(),
                signature: kp.sign(&payload),
            });
        }
    }

    fn tx(nonce: u64, key: &str, orgs: &[&str]) -> Transaction {
        let client = Identity::new("client", "org1");
        let mut rwset = ReadWriteSet::new();
        rwset.writes.put(key, vec![nonce as u8]);
        let mut tx = Transaction {
            id: TxId::derive(&client, nonce, "cc"),
            client,
            chaincode: "cc".into(),
            rwset,
            endorsements: Vec::new(),
        };
        endorse(&mut tx, orgs);
        tx
    }

    fn peer() -> Peer<FabricValidator> {
        Peer::new(
            FabricValidator::new(),
            EndorsementPolicy::all_of(["org1", "org2"]),
        )
    }

    fn next_block(peer: &Peer<FabricValidator>, txs: Vec<Transaction>) -> Block {
        Block::assemble(peer.chain().height(), peer.chain().tip_hash(), txs)
    }

    #[test]
    fn well_endorsed_transaction_commits() {
        let mut p = peer();
        let block = next_block(&p, vec![tx(1, "k", &["org1", "org2"])]);
        let staged = p.process_block(block);
        assert_eq!(staged.block.validation_codes, vec![ValidationCode::Valid]);
        assert_eq!(staged.work.sigs_verified, 2);
        p.commit(staged).unwrap();
        assert_eq!(p.state().value("k"), Some(&[1u8][..]));
        assert_eq!(p.chain().height(), 2); // genesis + this block
    }

    #[test]
    fn missing_org_fails_endorsement_policy() {
        let mut p = peer();
        let block = next_block(&p, vec![tx(1, "k", &["org1"])]);
        let staged = p.process_block(block);
        assert_eq!(
            staged.block.validation_codes,
            vec![ValidationCode::EndorsementPolicyFailure]
        );
        p.commit(staged).unwrap();
        assert!(p.state().value("k").is_none());
    }

    #[test]
    fn forged_signature_fails_endorsement() {
        let mut p = peer();
        let mut t = tx(1, "k", &["org1", "org2"]);
        // Corrupt the second endorsement's signature.
        t.endorsements[1].signature.0[0] ^= 0xff;
        let block = next_block(&p, vec![t]);
        let staged = p.process_block(block);
        assert_eq!(
            staged.block.validation_codes,
            vec![ValidationCode::EndorsementPolicyFailure]
        );
        p.commit(staged).unwrap();
    }

    #[test]
    fn duplicate_within_block_rejected() {
        let mut p = peer();
        let t = tx(1, "k", &["org1", "org2"]);
        let block = next_block(&p, vec![t.clone(), t]);
        let staged = p.process_block(block);
        assert_eq!(
            staged.block.validation_codes,
            vec![ValidationCode::Valid, ValidationCode::DuplicateTxId]
        );
        p.commit(staged).unwrap();
    }

    #[test]
    fn duplicate_across_blocks_rejected() {
        let mut p = peer();
        let t = tx(1, "k", &["org1", "org2"]);
        let b0 = next_block(&p, vec![t.clone()]);
        let staged = p.process_block(b0);
        p.commit(staged).unwrap();
        let b1 = next_block(&p, vec![t]);
        let staged = p.process_block(b1);
        assert_eq!(
            staged.block.validation_codes,
            vec![ValidationCode::DuplicateTxId]
        );
    }

    #[test]
    fn state_unchanged_until_commit() {
        let mut p = peer();
        let block = next_block(&p, vec![tx(1, "k", &["org1", "org2"])]);
        let staged = p.process_block(block);
        assert!(p.state().value("k").is_none());
        assert_eq!(staged.new_state.value("k"), Some(&[1u8][..]));
    }

    #[test]
    fn seeded_state_is_at_genesis_height() {
        let mut p = peer();
        p.seed_state("device1", b"{}".to_vec());
        assert_eq!(p.state().version("device1"), Some(Height::genesis()));
    }

    #[test]
    fn snapshot_restore_roundtrip_and_continue() {
        let mut original = peer();
        original.seed_state("seeded", b"s".to_vec());
        for n in 1..4 {
            let block = next_block(&original, vec![tx(n, &format!("k{n}"), &["org1", "org2"])]);
            let staged = original.process_block(block);
            original.commit(staged).unwrap();
        }

        let snapshot = original.snapshot();
        let mut restored =
            Peer::restore(FabricValidator::new(), original.policy.clone(), &snapshot).unwrap();

        assert_eq!(restored.state(), original.state());
        assert_eq!(restored.chain().tip_hash(), original.chain().tip_hash());
        assert_eq!(
            restored.history().history("k1"),
            original.history().history("k1")
        );

        // Both peers process the next block identically — including
        // duplicate detection derived from the restored chain.
        let dup = original.chain().block(1).unwrap().transactions[0].clone();
        let next_txs = vec![tx(9, "k9", &["org1", "org2"]), dup];
        let block_a = next_block(&original, next_txs.clone());
        let staged_a = original.process_block(block_a.clone());
        let staged_b = restored.process_block(block_a);
        assert_eq!(
            staged_a.block.validation_codes,
            staged_b.block.validation_codes
        );
        assert_eq!(
            staged_a.block.validation_codes,
            vec![ValidationCode::Valid, ValidationCode::DuplicateTxId]
        );
        original.commit(staged_a).unwrap();
        restored.commit(staged_b).unwrap();
        assert_eq!(restored.state(), original.state());
    }

    #[test]
    fn replay_applies_only_successful_writes() {
        // Build a committed block on one peer, replay it on another.
        let mut source = peer();
        let good = tx(1, "good", &["org1", "org2"]);
        let bad = tx(2, "bad", &["org1"]); // policy failure
        let block = next_block(&source, vec![good, bad]);
        let staged = source.process_block(block);
        source.commit(staged).unwrap();

        let mut replica = peer();
        let committed = source.chain().block(1).unwrap().clone();
        replica.replay_block(committed).unwrap();
        assert_eq!(replica.state().value("good"), Some(&[1u8][..]));
        assert!(replica.state().value("bad").is_none());
        assert_eq!(replica.chain().tip_hash(), source.chain().tip_hash());
        assert_eq!(replica.history().history("good").len(), 1);
    }

    #[test]
    fn replay_rejects_unvalidated_blocks() {
        let mut p = peer();
        let block = next_block(&p, vec![tx(1, "k", &["org1", "org2"])]);
        // No validation codes: this block never went through a commit.
        assert_eq!(
            p.replay_block(block).unwrap_err(),
            fabriccrdt_ledger::chain::ChainError::MissingValidationCodes
        );
    }

    #[test]
    fn restore_rejects_corrupt_snapshot() {
        let p = peer();
        let mut snapshot = p.snapshot();
        snapshot.chain[0] ^= 0xff;
        assert!(Peer::restore(
            FabricValidator::new(),
            EndorsementPolicy::all_of(["org1", "org2"]),
            &snapshot
        )
        .is_err());
    }

    #[test]
    fn tampered_block_rejected_wholesale() {
        let mut p = peer();
        let mut block = next_block(&p, vec![tx(1, "k", &["org1", "org2"])]);
        // Tamper with the transaction after the orderer sealed the block.
        block.transactions[0]
            .rwset
            .writes
            .put("k", b"evil".to_vec());
        let staged = p.process_block(block);
        assert_eq!(
            staged.block.validation_codes,
            vec![ValidationCode::TamperedBlock]
        );
        assert_eq!(staged.work.sigs_verified, 0, "no further validation runs");
        p.commit(staged).unwrap();
        // Nothing committed; the tampering is on the record.
        assert!(p.state().value("k").is_none());
    }

    #[test]
    fn parallel_finalize_matches_sequential() {
        // Mixed block: a hot-key chain, disjoint singleton chains, an
        // in-block duplicate and a policy failure — exercising the
        // conflict-graph path, pre-decided exclusion and reassembly.
        let dup = tx(1, "a", &["org1", "org2"]);
        let txs = vec![
            dup.clone(),
            tx(2, "hot", &["org1", "org2"]),
            tx(3, "hot", &["org1", "org2"]),
            dup,
            tx(4, "b", &["org1"]),
            tx(5, "c", &["org1", "org2"]),
        ];
        let mut seq = peer();
        let mut par = peer().with_pipeline(ValidationPipeline::parallel(4));
        for p in [&mut seq, &mut par] {
            p.seed_state("hot", b"seed".to_vec());
        }
        let block = next_block(&seq, txs);
        let staged_seq = seq.process_block(block.clone());
        let staged_par = par.process_block(block);
        assert_eq!(
            staged_par.block.validation_codes,
            staged_seq.block.validation_codes
        );
        assert_eq!(
            staged_par.block.header.data_hash,
            staged_seq.block.header.data_hash
        );
        assert_eq!(staged_par.new_state, staged_seq.new_state);
        assert_eq!(staged_par.work, staged_seq.work);
        seq.commit(staged_seq).unwrap();
        par.commit(staged_par).unwrap();
        assert_eq!(seq.snapshot(), par.snapshot(), "byte-identical ledgers");
    }

    #[test]
    fn set_pipeline_swaps_the_runner() {
        let mut p = peer();
        assert_eq!(p.pipeline(), ValidationPipeline::Sequential);
        p.set_pipeline(ValidationPipeline::parallel(2));
        assert_eq!(p.pipeline(), ValidationPipeline::parallel(2));
        let block = next_block(&p, vec![tx(1, "k", &["org1", "org2"])]);
        let staged = p.process_block(block);
        assert_eq!(staged.block.validation_codes, vec![ValidationCode::Valid]);
        assert!(staged.timings.pre_validate_secs >= 0.0);
        assert!(staged.timings.finalize_secs >= 0.0);
    }

    fn reading_tx(
        nonce: u64,
        key: &str,
        read_key: &str,
        version: Option<Height>,
        orgs: &[&str],
    ) -> Transaction {
        let client = Identity::new("client", "org1");
        let mut rwset = ReadWriteSet::new();
        rwset.reads.record(read_key, version);
        rwset.writes.put(key, vec![nonce as u8]);
        let mut tx = Transaction {
            id: TxId::derive(&client, nonce, "cc"),
            client,
            chaincode: "cc".into(),
            rwset,
            endorsements: Vec::new(),
        };
        endorse(&mut tx, orgs);
        tx
    }

    #[test]
    fn pipelined_chaining_matches_sequential() {
        // Drive the prevalidate / finish_block_with_next chain over a
        // stream with duplicates, policy failures and a hot-key chain;
        // the sequential replica processes the same stream one block at
        // a time. Ledgers must come out byte-identical.
        let dup = tx(1, "a", &["org1", "org2"]);
        let blocks: Vec<Vec<Transaction>> = vec![
            vec![dup.clone(), tx(2, "hot", &["org1", "org2"])],
            vec![tx(3, "hot", &["org1", "org2"]), tx(4, "b", &["org1"])],
            vec![dup, tx(5, "c", &["org1", "org2"])],
        ];
        let mut seq = peer();
        let mut pip = peer().with_pipeline(ValidationPipeline::pipelined(4));
        for p in [&mut seq, &mut pip] {
            p.seed_state("hot", b"seed".to_vec());
        }

        // Sequential reference.
        for txs in &blocks {
            let block = next_block(&seq, txs.clone());
            let staged = seq.process_block(block);
            seq.commit(staged).unwrap();
        }

        // Pipelined: block N+1 is prepared while block N finalizes.
        // Blocks are numbered up front (as an orderer would emit them);
        // the finish-time re-seal links each to the committed tip.
        let mut prep = pip.prevalidate(next_block(&pip, blocks[0].clone()));
        for (n, txs) in blocks.iter().enumerate().skip(1) {
            let block = Block::assemble((n + 1) as u64, [0; 32], txs.clone());
            let (staged, next_prep) = pip.finish_block_with_next(prep, block);
            pip.commit(staged).unwrap();
            prep = next_prep;
        }
        let staged = pip.finish_block(prep);
        pip.commit(staged).unwrap();

        assert_eq!(seq.snapshot(), pip.snapshot(), "byte-identical ledgers");
        let stats = pip.take_pipeline_metrics();
        assert_eq!(stats.blocks_overlapped, 2);
    }

    #[test]
    fn overlapped_prevalidation_sees_in_flight_duplicates() {
        // A transaction repeated in the very next block must be flagged
        // DuplicateTxId even though its first copy has not committed
        // when the second block's pre-validation starts.
        let dup = tx(1, "a", &["org1", "org2"]);
        let mut p = peer().with_pipeline(ValidationPipeline::pipelined(2));
        let prep = p.prevalidate(next_block(&p, vec![dup.clone()]));
        let b2 = Block::assemble(2, [0; 32], vec![dup, tx(2, "b", &["org1", "org2"])]);
        let (staged1, prep2) = p.finish_block_with_next(prep, b2);
        p.commit(staged1).unwrap();
        let staged2 = p.finish_block(prep2);
        assert_eq!(
            staged2.block.validation_codes,
            vec![ValidationCode::DuplicateTxId, ValidationCode::Valid]
        );
        p.commit(staged2).unwrap();
    }

    #[test]
    fn overlapped_read_racing_a_commit_is_caught_at_finalize() {
        // Directed race: block 1 writes "k"; block 2 reads "k" at the
        // seeded version. Block 2's lockless pre-validation runs
        // against the pre-commit epoch (where the read still looks
        // fresh); the authoritative MVCC recheck at finalize — after
        // block 1 committed — must flag the conflict, exactly as the
        // sequential path does.
        let write = tx(1, "k", &["org1", "org2"]);
        let read = reading_tx(2, "other", "k", Some(Height::genesis()), &["org1", "org2"]);

        let mut seq = peer();
        let mut pip = peer().with_pipeline(ValidationPipeline::pipelined(4));
        for p in [&mut seq, &mut pip] {
            p.seed_state("k", b"seed".to_vec());
        }

        let s1 = seq.process_block(next_block(&seq, vec![write.clone()]));
        seq.commit(s1).unwrap();
        let s2 = seq.process_block(next_block(&seq, vec![read.clone()]));
        assert_eq!(
            s2.block.validation_codes,
            vec![ValidationCode::MvccConflict]
        );
        seq.commit(s2).unwrap();

        let prep1 = pip.prevalidate(next_block(&pip, vec![write]));
        let b2 = Block::assemble(2, [0; 32], vec![read]);
        let (staged1, prep2) = pip.finish_block_with_next(prep1, b2);
        pip.commit(staged1).unwrap();
        let staged2 = pip.finish_block(prep2);
        assert_eq!(
            staged2.block.validation_codes,
            vec![ValidationCode::MvccConflict]
        );
        pip.commit(staged2).unwrap();

        assert_eq!(seq.snapshot(), pip.snapshot(), "byte-identical ledgers");
        let stats = pip.take_pipeline_metrics();
        assert_eq!(stats.blocks_overlapped, 1);
        assert_eq!(
            stats.speculation_overturned, 1,
            "the speculative verdict raced block 1's commit and was overturned"
        );
        assert_eq!(stats.speculation_confirmed, 0);
        assert!(stats.speculative_reads_checked >= 1);
    }

    #[test]
    fn commit_rejects_wrong_block_number() {
        let mut p = peer();
        let block = Block::assemble(7, p.chain().tip_hash(), vec![]);
        let staged = p.process_block(block);
        assert!(p.commit(staged).is_err());
        assert_eq!(p.chain().height(), 1); // still only genesis
    }
}
