//! Pluggable block validation.
//!
//! Vanilla Fabric and FabricCRDT share the entire pipeline except the
//! final validation-and-commit stage (paper Figure 2). That stage is a
//! trait here; [`FabricValidator`] implements Fabric's MVCC path, and the
//! `fabriccrdt` core crate implements the merging path of Algorithm 1.

use fabriccrdt_ledger::block::{Block, ValidationCode};
use fabriccrdt_ledger::mvcc;
use fabriccrdt_ledger::transaction::Transaction;
use fabriccrdt_ledger::worldstate::WorldState;

use crate::cost::ValidationWork;

/// Validates a block's transactions against the world state and commits
/// the surviving write sets, filling `block.validation_codes`.
///
/// `pre_decided` carries per-transaction codes decided by earlier stages
/// (duplicate ids, endorsement-policy failures); those transactions must
/// be recorded as-is and must not touch the state.
///
/// `Sync` is required because the peer's pre-validation stage may fan
/// transactions out over scoped worker threads
/// ([`crate::pipeline::ValidationPipeline`]), each of which calls
/// [`BlockValidator::prepare`] through a shared reference.
pub trait BlockValidator: Sync {
    /// Runs validation and commit, returning the work performed
    /// (excluding signature verification, which the peer accounts for).
    fn validate_and_commit(
        &self,
        block: &mut Block,
        state: &mut WorldState,
        pre_decided: &[Option<ValidationCode>],
    ) -> ValidationWork;

    /// Per-transaction warm-up hook, invoked from the (possibly
    /// parallel) pre-validation stage for every non-duplicate
    /// transaction, *before* the sequential
    /// [`validate_and_commit`](BlockValidator::validate_and_commit)
    /// stage runs.
    ///
    /// Implementations may use it to hoist per-transaction decode work
    /// off the sequential critical path — e.g. FabricCRDT's merging
    /// validator pre-parses CRDT write payloads into a shared decode
    /// cache here. The hook must be pure with respect to validation
    /// outcomes: it must not touch the world state or the block, so a
    /// no-op implementation (the default) is always value-equivalent.
    fn prepare(&self, _tx: &Transaction) {}

    /// Short name for reports ("fabric", "fabriccrdt").
    fn name(&self) -> &str;
}

/// Vanilla Fabric: sequential MVCC validation (§3), conflicting
/// transactions are rejected.
#[derive(Debug, Clone, Copy, Default)]
pub struct FabricValidator;

impl FabricValidator {
    /// Creates the validator.
    pub fn new() -> Self {
        FabricValidator
    }
}

impl BlockValidator for FabricValidator {
    fn validate_and_commit(
        &self,
        block: &mut Block,
        state: &mut WorldState,
        pre_decided: &[Option<ValidationCode>],
    ) -> ValidationWork {
        let stats = mvcc::validate_and_commit(block, state, pre_decided, false);
        ValidationWork {
            sigs_verified: 0,
            reads_checked: stats.reads_checked,
            writes_applied: stats.writes_applied,
            merge_units: 0,
            merge_quad: 0,
            successes: stats.successes,
        }
    }

    fn name(&self) -> &str {
        "fabric"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabriccrdt_crypto::Identity;
    use fabriccrdt_ledger::rwset::ReadWriteSet;
    use fabriccrdt_ledger::transaction::{Transaction, TxId};
    use fabriccrdt_ledger::version::Height;

    fn conflicting_tx(n: u64) -> Transaction {
        let client = Identity::new("client", "org1");
        let mut rwset = ReadWriteSet::new();
        rwset.reads.record("hot", Some(Height::new(1, 0)));
        rwset.writes.put("hot", vec![n as u8]);
        Transaction {
            id: TxId::derive(&client, n, "cc"),
            client,
            chaincode: "cc".into(),
            rwset,
            endorsements: Vec::new(),
        }
    }

    #[test]
    fn fabric_validator_rejects_conflicts() {
        let mut state = WorldState::new();
        state.put("hot".into(), b"0".to_vec(), Height::new(1, 0));
        let mut block = Block::assemble(2, [0; 32], (0..4).map(conflicting_tx).collect());
        let work = FabricValidator::new().validate_and_commit(&mut block, &mut state, &[]);
        assert_eq!(work.successes, 1);
        assert_eq!(work.merge_units, 0);
        assert_eq!(block.successful_count(), 1);
    }

    #[test]
    fn fabric_validator_name() {
        assert_eq!(FabricValidator::new().name(), "fabric");
    }
}
