//! Pluggable block validation.
//!
//! Vanilla Fabric and FabricCRDT share the entire pipeline except the
//! final validation-and-commit stage (paper Figure 2). That stage is a
//! trait here; [`FabricValidator`] implements Fabric's MVCC path, and the
//! `fabriccrdt` core crate implements the merging path of Algorithm 1.

use fabriccrdt_ledger::block::{Block, ValidationCode};
use fabriccrdt_ledger::mvcc;
use fabriccrdt_ledger::transaction::Transaction;
use fabriccrdt_ledger::worldstate::WorldState;

use crate::cost::ValidationWork;
use crate::metrics::DecodeCacheMetrics;
use crate::state::ShardedState;

/// Outcome of finalizing one conflict chain (see
/// [`BlockValidator::finalize_chain`]): everything the sequential pass
/// would have produced for these transactions, tagged with block-global
/// indices so the peer can reassemble block order.
#[derive(Debug, Clone, Default)]
pub struct ChainOutcome {
    /// `(block index, code)` per chain transaction, in block order.
    pub codes: Vec<(usize, ValidationCode)>,
    /// `(block index, key, converged bytes)` write-value rewrites — the
    /// second pass of Algorithm 1 applied to this chain's members
    /// (empty for non-CRDT validators).
    pub rewrites: Vec<(usize, String, Vec<u8>)>,
    /// Work performed finalizing this chain.
    pub work: ValidationWork,
}

/// Validates a block's transactions against the world state and commits
/// the surviving write sets, filling `block.validation_codes`.
///
/// `pre_decided` carries per-transaction codes decided by earlier stages
/// (duplicate ids, endorsement-policy failures); those transactions must
/// be recorded as-is and must not touch the state.
///
/// `Send + Sync + 'static` is required because the peer's parallel
/// stages fan work out over the persistent pool threads of
/// [`crate::pipeline::PipelineRunner`], each of which calls
/// [`BlockValidator::prepare`] and
/// [`BlockValidator::finalize_chain`] through a shared `Arc`.
pub trait BlockValidator: Send + Sync + 'static {
    /// Runs validation and commit, returning the work performed
    /// (excluding signature verification, which the peer accounts for).
    fn validate_and_commit(
        &self,
        block: &mut Block,
        state: &mut WorldState,
        pre_decided: &[Option<ValidationCode>],
    ) -> ValidationWork;

    /// Per-transaction warm-up hook, invoked from the (possibly
    /// parallel) pre-validation stage for every non-duplicate
    /// transaction, *before* the sequential
    /// [`validate_and_commit`](BlockValidator::validate_and_commit)
    /// stage runs.
    ///
    /// Implementations may use it to hoist per-transaction decode work
    /// off the sequential critical path — e.g. FabricCRDT's merging
    /// validator pre-parses CRDT write payloads into a shared decode
    /// cache here. The hook must be pure with respect to validation
    /// outcomes: it must not touch the world state or the block, so a
    /// no-op implementation (the default) is always value-equivalent.
    fn prepare(&self, _tx: &Transaction) {}

    /// Finalizes one conflict chain of the block: the restriction of
    /// [`validate_and_commit`](BlockValidator::validate_and_commit) to
    /// the transactions in `chain` (ascending block-global indices from
    /// [`crate::schedule::conflict_chains`]), committing through the
    /// sharded state instead of mutating a `WorldState` and *returning*
    /// write-value rewrites instead of mutating the block.
    ///
    /// The scheduler guarantees chain key sets are disjoint, so the
    /// default implementation — plain MVCC, no merges — and any
    /// override must be value-identical to the sequential pass when the
    /// peer runs every chain and reassembles outcomes in block order
    /// (asserted in debug builds and by the equivalence sweeps).
    fn finalize_chain(
        &self,
        block_number: u64,
        transactions: &[Transaction],
        chain: &[usize],
        state: &ShardedState,
    ) -> ChainOutcome {
        let commit =
            mvcc::validate_chain(block_number, transactions, chain, state, false, |_, _| None);
        ChainOutcome {
            codes: commit.codes,
            rewrites: Vec::new(),
            work: ValidationWork {
                sigs_verified: 0,
                reads_checked: commit.stats.reads_checked,
                writes_applied: commit.stats.writes_applied,
                merge_units: 0,
                merge_quad: 0,
                successes: commit.stats.successes,
            },
        }
    }

    /// Speculative MVCC read check against an immutable state snapshot
    /// — the lockless read path of the cross-block pipeline
    /// ([`crate::pipeline::ValidationPipeline::Pipelined`]).
    ///
    /// Called during the *overlapped* pre-validation of block N+1,
    /// reading a published [`WorldState`] epoch (plain `BTreeMap`
    /// lookups through an `Arc` pointer — no lock anywhere on the
    /// path). Returns whether every read-set version still matches the
    /// snapshot. The verdict is advisory only: the authoritative MVCC
    /// check at finalize re-runs against the committed state and
    /// decides the validation code, so a read that raced block N's
    /// commit is caught there (counted as
    /// [`crate::metrics::PipelineMetrics::speculation_overturned`]).
    ///
    /// The default mirrors vanilla Fabric's read predicate. Validators
    /// whose MVCC stage exempts some transactions (FabricCRDT's merge
    /// path exempts CRDT transactions wholesale, §4.3) should override
    /// to predict what *their* finalize would conclude.
    fn speculative_read_check(&self, tx: &Transaction, state: &WorldState) -> bool {
        tx.rwset
            .reads
            .iter()
            .all(|(key, entry)| state.version(key) == entry.version)
    }

    /// Decode-cache counters attributable to this validator, if it uses
    /// the process-wide payload cache (`None` — rendered "n/a" — for
    /// validators that never decode, like vanilla Fabric's).
    fn decode_cache_stats(&self) -> Option<DecodeCacheMetrics> {
        None
    }

    /// Short name for reports ("fabric", "fabriccrdt").
    fn name(&self) -> &str;
}

/// Vanilla Fabric: sequential MVCC validation (§3), conflicting
/// transactions are rejected.
#[derive(Debug, Clone, Copy, Default)]
pub struct FabricValidator;

impl FabricValidator {
    /// Creates the validator.
    pub fn new() -> Self {
        FabricValidator
    }
}

impl BlockValidator for FabricValidator {
    fn validate_and_commit(
        &self,
        block: &mut Block,
        state: &mut WorldState,
        pre_decided: &[Option<ValidationCode>],
    ) -> ValidationWork {
        let stats = mvcc::validate_and_commit(block, state, pre_decided, false);
        ValidationWork {
            sigs_verified: 0,
            reads_checked: stats.reads_checked,
            writes_applied: stats.writes_applied,
            merge_units: 0,
            merge_quad: 0,
            successes: stats.successes,
        }
    }

    fn name(&self) -> &str {
        "fabric"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabriccrdt_crypto::Identity;
    use fabriccrdt_ledger::rwset::ReadWriteSet;
    use fabriccrdt_ledger::transaction::{Transaction, TxId};
    use fabriccrdt_ledger::version::Height;

    fn conflicting_tx(n: u64) -> Transaction {
        let client = Identity::new("client", "org1");
        let mut rwset = ReadWriteSet::new();
        rwset.reads.record("hot", Some(Height::new(1, 0)));
        rwset.writes.put("hot", vec![n as u8]);
        Transaction {
            id: TxId::derive(&client, n, "cc"),
            client,
            chaincode: "cc".into(),
            rwset,
            endorsements: Vec::new(),
        }
    }

    #[test]
    fn fabric_validator_rejects_conflicts() {
        let mut state = WorldState::new();
        state.put("hot".into(), b"0".to_vec(), Height::new(1, 0));
        let mut block = Block::assemble(2, [0; 32], (0..4).map(conflicting_tx).collect());
        let work = FabricValidator::new().validate_and_commit(&mut block, &mut state, &[]);
        assert_eq!(work.successes, 1);
        assert_eq!(work.merge_units, 0);
        assert_eq!(block.successful_count(), 1);
    }

    #[test]
    fn fabric_validator_name() {
        assert_eq!(FabricValidator::new().name(), "fabric");
    }

    #[test]
    fn default_finalize_chain_matches_sequential_pass() {
        let seed = {
            let mut s = WorldState::new();
            s.put("hot".into(), b"0".to_vec(), Height::new(1, 0));
            s
        };
        let txs: Vec<Transaction> = (0..4).map(conflicting_tx).collect();

        let mut seq_state = seed.clone();
        let mut block = Block::assemble(2, [0; 32], txs.clone());
        let seq_work = FabricValidator::new().validate_and_commit(&mut block, &mut seq_state, &[]);

        let sharded = ShardedState::from_world(&seed);
        let chain: Vec<usize> = (0..txs.len()).collect();
        let outcome = FabricValidator::new().finalize_chain(2, &txs, &chain, &sharded);

        assert_eq!(outcome.work, seq_work);
        assert!(outcome.rewrites.is_empty());
        assert_eq!(
            outcome.codes.iter().map(|(_, c)| *c).collect::<Vec<_>>(),
            block.validation_codes
        );
        assert_eq!(sharded.into_world(), seq_state);
    }

    #[test]
    fn fabric_validator_reports_no_decode_cache() {
        assert!(FabricValidator::new().decode_cache_stats().is_none());
    }

    #[test]
    fn speculative_read_check_mirrors_mvcc_predicate() {
        let mut state = WorldState::new();
        state.put("hot".into(), b"0".to_vec(), Height::new(1, 0));
        let v = FabricValidator::new();
        // Fresh read: matches the snapshot.
        assert!(v.speculative_read_check(&conflicting_tx(1), &state));
        // The key moved on: the speculative verdict flips, exactly as
        // the authoritative check at finalize would.
        state.put("hot".into(), b"1".to_vec(), Height::new(2, 0));
        assert!(!v.speculative_read_check(&conflicting_tx(1), &state));
        // Write-only transactions never conflict.
        let client = Identity::new("client", "org1");
        let mut rwset = ReadWriteSet::new();
        rwset.writes.put("hot", vec![9]);
        let write_only = Transaction {
            id: TxId::derive(&client, 9, "cc"),
            client,
            chaincode: "cc".into(),
            rwset,
            endorsements: Vec::new(),
        };
        assert!(v.speculative_read_check(&write_only, &state));
    }
}
