//! Chaincodes and the chaincode shim.
//!
//! Chaincodes are the smart contracts of Fabric; developers interact with
//! ledger data through the *chaincode shim* (§2.1). During endorsement a
//! peer executes the chaincode against its local world state *without*
//! modifying it ("peers simulate the transaction proposal"); the result is
//! a read-write set.
//!
//! FabricCRDT adds one shim call: `putCRDT`, which "only informs the peer
//! that this value is a CRDT and does not interact with the CRDT in any
//! way" (§5.2) — here [`ChaincodeStub::put_crdt`].

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use fabriccrdt_ledger::history::{HistoryDb, HistoryEntry};
use fabriccrdt_ledger::rwset::ReadWriteSet;
use fabriccrdt_ledger::worldstate::WorldState;

/// A chaincode event: emitted during execution, delivered to listeners
/// only if the transaction commits successfully (Fabric's event
/// service semantics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaincodeEvent {
    /// Event name.
    pub name: String,
    /// Opaque payload.
    pub payload: Vec<u8>,
}

/// Error returned by a chaincode invocation. A failing invocation aborts
/// the proposal; no transaction is submitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaincodeError {
    message: String,
}

impl ChaincodeError {
    /// Creates an error with a message.
    pub fn new(message: impl Into<String>) -> Self {
        ChaincodeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ChaincodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chaincode error: {}", self.message)
    }
}

impl Error for ChaincodeError {}

/// Work performed by one chaincode execution, consumed by the cost model
/// to charge endorsement latency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecWork {
    /// `get_state` calls.
    pub reads: u64,
    /// `put_state`/`put_crdt`/`delete_state` calls.
    pub writes: u64,
    /// Bytes read from the world state.
    pub bytes_read: u64,
    /// Bytes staged for writing.
    pub bytes_written: u64,
}

/// The shim handed to a chaincode during simulation.
///
/// Reads are answered from a read-only world-state snapshot and recorded
/// in the read set with the observed version; writes are buffered in the
/// write set and never touch the state (§2.1: execution is isolated).
#[derive(Debug)]
pub struct ChaincodeStub<'a> {
    state: &'a WorldState,
    history: Option<&'a HistoryDb>,
    rwset: ReadWriteSet,
    work: ExecWork,
    event: Option<ChaincodeEvent>,
}

impl<'a> ChaincodeStub<'a> {
    /// Creates a stub simulating against `state`.
    pub fn new(state: &'a WorldState) -> Self {
        ChaincodeStub {
            state,
            history: None,
            rwset: ReadWriteSet::new(),
            work: ExecWork::default(),
            event: None,
        }
    }

    /// Creates a stub that can also answer `get_history_for_key`.
    pub fn with_history(state: &'a WorldState, history: &'a HistoryDb) -> Self {
        let mut stub = ChaincodeStub::new(state);
        stub.history = Some(history);
        stub
    }

    /// Reads a key from the ledger, recording it (and the version
    /// observed) in the read set. Returns `None` for missing keys —
    /// which is also recorded, so that MVCC catches concurrent creation.
    pub fn get_state(&mut self, key: &str) -> Option<Vec<u8>> {
        self.work.reads += 1;
        let entry = self.state.get(key);
        self.rwset.reads.record(key, entry.map(|e| e.version));
        let value = entry.map(|e| e.value.clone());
        if let Some(v) = &value {
            self.work.bytes_read += v.len() as u64;
        }
        value
    }

    /// Buffers a plain write.
    pub fn put_state(&mut self, key: &str, value: Vec<u8>) {
        self.work.writes += 1;
        self.work.bytes_written += value.len() as u64;
        self.rwset.writes.put(key, value);
    }

    /// Buffers a CRDT-flagged write — FabricCRDT's `putCRDT` (§5.2). The
    /// value must be canonical JSON bytes; the peer merges it with other
    /// CRDT writes of the same key at commit time (Algorithm 1).
    pub fn put_crdt(&mut self, key: &str, value: Vec<u8>) {
        self.work.writes += 1;
        self.work.bytes_written += value.len() as u64;
        self.rwset.writes.put_crdt(key, value);
    }

    /// Buffers a delete.
    pub fn delete_state(&mut self, key: &str) {
        self.work.writes += 1;
        self.rwset.writes.delete(key);
    }

    /// Range scan over keys in `[start, end)` — Fabric's
    /// `GetStateByRange`. Every returned key is recorded in the read set
    /// with its observed version. (Like Fabric ≤ v1.4, phantom reads —
    /// keys *appearing* in the range after simulation — are not
    /// detected.)
    pub fn get_state_by_range(&mut self, start: &str, end: &str) -> Vec<(String, Vec<u8>)> {
        let results: Vec<(String, Vec<u8>)> = self
            .state
            .range(start, end)
            .map(|(k, v)| (k.clone(), v.value.clone()))
            .collect();
        for (key, value) in &results {
            self.work.reads += 1;
            self.work.bytes_read += value.len() as u64;
            self.rwset
                .reads
                .record(key.clone(), self.state.version(key));
        }
        results
    }

    /// The full modification history of a key — Fabric's
    /// `GetHistoryForKey`. Returns an empty slice when the peer exposes
    /// no history index to this execution. Reading history does not
    /// create MVCC dependencies (it is derived from immutable blocks).
    pub fn get_history_for_key(&mut self, key: &str) -> &[HistoryEntry] {
        self.work.reads += 1;
        self.history.map(|h| h.history(key)).unwrap_or(&[])
    }

    /// Sets the chaincode event for this invocation (Fabric's
    /// `SetEvent`): delivered to listeners only if the transaction
    /// commits successfully. A later call replaces an earlier one.
    pub fn set_event(&mut self, name: impl Into<String>, payload: Vec<u8>) {
        self.event = Some(ChaincodeEvent {
            name: name.into(),
            payload,
        });
    }

    /// Finishes the simulation, yielding the read-write set and the work
    /// counters.
    pub fn into_result(self) -> (ReadWriteSet, ExecWork) {
        (self.rwset, self.work)
    }

    /// Finishes the simulation, yielding read-write set, work counters
    /// and the chaincode event (if any).
    pub fn into_parts(self) -> (ReadWriteSet, ExecWork, Option<ChaincodeEvent>) {
        (self.rwset, self.work, self.event)
    }
}

/// A chaincode: named business logic invoked with string arguments.
///
/// Implementations must be deterministic — all endorsing peers must
/// produce identical read-write sets.
pub trait Chaincode: Send + Sync {
    /// The chaincode name clients address it by.
    fn name(&self) -> &str;

    /// Executes one invocation against the stub.
    ///
    /// # Errors
    ///
    /// Returns a [`ChaincodeError`] to abort the proposal.
    fn invoke(&self, stub: &mut ChaincodeStub<'_>, args: &[String]) -> Result<(), ChaincodeError>;
}

/// A registry of deployed chaincodes, shared by all peers.
#[derive(Clone, Default)]
pub struct ChaincodeRegistry {
    chaincodes: HashMap<String, Arc<dyn Chaincode>>,
}

impl ChaincodeRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deploys a chaincode under its own name.
    pub fn deploy(&mut self, chaincode: Arc<dyn Chaincode>) {
        self.chaincodes
            .insert(chaincode.name().to_owned(), chaincode);
    }

    /// Looks up a chaincode.
    pub fn get(&self, name: &str) -> Option<&Arc<dyn Chaincode>> {
        self.chaincodes.get(name)
    }

    /// Number of deployed chaincodes.
    pub fn len(&self) -> usize {
        self.chaincodes.len()
    }

    /// Whether no chaincode is deployed.
    pub fn is_empty(&self) -> bool {
        self.chaincodes.is_empty()
    }
}

impl fmt::Debug for ChaincodeRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChaincodeRegistry")
            .field("chaincodes", &self.chaincodes.keys().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabriccrdt_ledger::version::Height;

    /// Minimal chaincode: reads `args[0]`, writes `args[0] -> args[1]`.
    struct KvChaincode;

    impl Chaincode for KvChaincode {
        fn name(&self) -> &str {
            "kv"
        }

        fn invoke(
            &self,
            stub: &mut ChaincodeStub<'_>,
            args: &[String],
        ) -> Result<(), ChaincodeError> {
            if args.len() != 2 {
                return Err(ChaincodeError::new("expected key and value"));
            }
            stub.get_state(&args[0]);
            stub.put_state(&args[0], args[1].clone().into_bytes());
            Ok(())
        }
    }

    #[test]
    fn stub_records_reads_with_versions() {
        let mut state = WorldState::new();
        state.put("k".into(), b"v".to_vec(), Height::new(3, 1));
        let mut stub = ChaincodeStub::new(&state);
        assert_eq!(stub.get_state("k"), Some(b"v".to_vec()));
        assert_eq!(stub.get_state("missing"), None);
        let (rwset, work) = stub.into_result();
        assert_eq!(
            rwset.reads.get("k").unwrap().version,
            Some(Height::new(3, 1))
        );
        assert_eq!(rwset.reads.get("missing").unwrap().version, None);
        assert_eq!(work.reads, 2);
        assert_eq!(work.bytes_read, 1);
    }

    #[test]
    fn stub_buffers_writes_without_touching_state() {
        let state = WorldState::new();
        let mut stub = ChaincodeStub::new(&state);
        stub.put_state("a", b"1".to_vec());
        stub.put_crdt("b", b"{}".to_vec());
        stub.delete_state("c");
        let (rwset, work) = stub.into_result();
        assert!(!rwset.writes.get("a").unwrap().is_crdt);
        assert!(rwset.writes.get("b").unwrap().is_crdt);
        assert!(rwset.writes.get("c").unwrap().is_delete);
        assert_eq!(work.writes, 3);
        assert!(state.is_empty());
    }

    #[test]
    fn chaincode_invocation_produces_rwset() {
        let state = WorldState::new();
        let mut stub = ChaincodeStub::new(&state);
        KvChaincode
            .invoke(&mut stub, &["k".into(), "v".into()])
            .unwrap();
        let (rwset, _) = stub.into_result();
        assert_eq!(rwset.reads.len(), 1);
        assert_eq!(rwset.writes.get("k").unwrap().value, b"v");
    }

    #[test]
    fn chaincode_error_propagates() {
        let state = WorldState::new();
        let mut stub = ChaincodeStub::new(&state);
        let err = KvChaincode.invoke(&mut stub, &[]).unwrap_err();
        assert!(err.to_string().contains("expected key and value"));
    }

    #[test]
    fn range_scan_records_reads() {
        let mut state = WorldState::new();
        for key in ["sensor-1", "sensor-2", "sensor-9", "zzz"] {
            state.put(key.into(), b"v".to_vec(), Height::new(1, 0));
        }
        let mut stub = ChaincodeStub::new(&state);
        let results = stub.get_state_by_range("sensor-", "sensor-5");
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].0, "sensor-1");
        let (rwset, work) = stub.into_result();
        assert_eq!(rwset.reads.len(), 2);
        assert_eq!(
            rwset.reads.get("sensor-2").unwrap().version,
            Some(Height::new(1, 0))
        );
        assert!(rwset.reads.get("zzz").is_none());
        assert_eq!(work.reads, 2);
    }

    #[test]
    fn history_queries_answer_from_index() {
        use fabriccrdt_crypto::Identity;
        use fabriccrdt_ledger::block::{Block, ValidationCode};
        use fabriccrdt_ledger::history::HistoryDb;
        use fabriccrdt_ledger::transaction::{Transaction, TxId};

        let client = Identity::new("client", "org1");
        let mut rwset = crate::chaincode::ReadWriteSet::new();
        rwset.writes.put("k", b"v1".to_vec());
        let tx = Transaction {
            id: TxId::derive(&client, 1, "cc"),
            client,
            chaincode: "cc".into(),
            rwset,
            endorsements: Vec::new(),
        };
        let mut block = Block::assemble(1, [0; 32], vec![tx]);
        block.validation_codes = vec![ValidationCode::Valid];
        let mut history = HistoryDb::new();
        history.record_block(&block);

        let state = WorldState::new();
        let mut stub = ChaincodeStub::with_history(&state, &history);
        let entries = stub.get_history_for_key("k");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].value.as_deref(), Some(&b"v1"[..]));

        // Without a history index the query is empty, not an error.
        let mut bare = ChaincodeStub::new(&state);
        assert!(bare.get_history_for_key("k").is_empty());
    }

    #[test]
    fn events_are_captured() {
        let state = WorldState::new();
        let mut stub = ChaincodeStub::new(&state);
        stub.set_event("first", b"a".to_vec());
        stub.set_event("second", b"b".to_vec()); // replaces
        let (_, _, event) = stub.into_parts();
        let event = event.unwrap();
        assert_eq!(event.name, "second");
        assert_eq!(event.payload, b"b");
    }

    #[test]
    fn registry_deploy_and_lookup() {
        let mut reg = ChaincodeRegistry::new();
        assert!(reg.is_empty());
        reg.deploy(Arc::new(KvChaincode));
        assert_eq!(reg.len(), 1);
        assert!(reg.get("kv").is_some());
        assert!(reg.get("nope").is_none());
        assert!(format!("{reg:?}").contains("kv"));
    }
}
