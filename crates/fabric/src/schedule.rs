//! Conflict-graph scheduling of a block's finalize stage.
//!
//! The sequential MVCC/merge pass walks a block's transactions in
//! order; the only ordering that actually matters is *per key*: a
//! transaction's read checks must see exactly the writes of earlier
//! in-block transactions on the same keys, and CRDT merges fold per-key
//! payload sequences in block order (Algorithm 1). Transactions with
//! disjoint key sets commute — the insight both Javaid et al.
//! (*Optimizing Validation Phase of Hyperledger Fabric*, dependency
//! analysis over rw-sets) and Meir et al. (*Lockless Transaction
//! Isolation*) build on.
//!
//! [`conflict_chains`] makes that precise: it unions transactions that
//! share any key (reads ∪ writes — CRDT merge keys are write-set
//! entries) into connected components with a union-find, and returns
//! each component as a *chain* of block indices in ascending block
//! order. Properties the parallel finalize stage relies on:
//!
//! - **Partition**: every undecided transaction appears in exactly one
//!   chain (key-less transactions form singleton chains).
//! - **Key locality**: a key read or written by a chain member is
//!   touched by no other chain.
//! - **Order**: within a chain, indices ascend in block order; across
//!   chains, the output is sorted by first member — fully deterministic
//!   regardless of thread count.
//!
//! Pre-decided transactions (duplicates, endorsement failures) never
//! touch the state, so they are excluded up front — exactly as the
//! sequential pass skips them.

use std::collections::HashMap;

use fabriccrdt_ledger::block::ValidationCode;
use fabriccrdt_ledger::Transaction;

/// Disjoint-set forest over transaction indices (path halving +
/// union by attaching the larger root to the smaller, which keeps the
/// smallest block index representative — handy for deterministic
/// grouping).
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        // Smaller index wins the root, so a component's representative
        // is its earliest transaction.
        let (low, high) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[high] = low;
    }
}

/// Buckets a block's undecided transactions into conflict chains (see
/// module docs). `pre_decided` must be empty or transaction-count long,
/// mirroring [`fabriccrdt_ledger::mvcc::validate_and_commit`].
///
/// # Panics
///
/// Panics if `pre_decided` is non-empty and its length differs from the
/// transaction count.
pub fn conflict_chains(
    transactions: &[Transaction],
    pre_decided: &[Option<ValidationCode>],
) -> Vec<Vec<usize>> {
    assert!(
        pre_decided.is_empty() || pre_decided.len() == transactions.len(),
        "pre_decided length must match transaction count"
    );
    let decided = |i: usize| -> bool { matches!(pre_decided.get(i), Some(Some(_))) };

    let mut forest = UnionFind::new(transactions.len());
    // First transaction seen touching each key; later toucher unions in.
    let mut key_owner: HashMap<&str, usize> = HashMap::new();
    for (i, tx) in transactions.iter().enumerate() {
        if decided(i) {
            continue;
        }
        let keys = tx
            .rwset
            .reads
            .iter()
            .map(|(key, _)| key.as_str())
            .chain(tx.rwset.writes.iter().map(|(key, _)| key.as_str()));
        for key in keys {
            match key_owner.get(key) {
                Some(&owner) => forest.union(owner, i),
                None => {
                    key_owner.insert(key, i);
                }
            }
        }
    }

    // Group by root. Scanning indices in ascending order makes every
    // chain ascend and orders chains by their first member.
    let mut chain_of_root: HashMap<usize, usize> = HashMap::new();
    let mut chains: Vec<Vec<usize>> = Vec::new();
    for i in 0..transactions.len() {
        if decided(i) {
            continue;
        }
        let root = forest.find(i);
        let slot = *chain_of_root.entry(root).or_insert_with(|| {
            chains.push(Vec::new());
            chains.len() - 1
        });
        chains[slot].push(i);
    }
    chains
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabriccrdt_crypto::Identity;
    use fabriccrdt_ledger::rwset::ReadWriteSet;
    use fabriccrdt_ledger::transaction::TxId;
    use fabriccrdt_ledger::Height;

    fn tx(n: u64, rwset: ReadWriteSet) -> Transaction {
        let client = Identity::new("client", "org1");
        Transaction {
            id: TxId::derive(&client, n, "cc"),
            client,
            chaincode: "cc".into(),
            rwset,
            endorsements: Vec::new(),
        }
    }

    fn write_tx(n: u64, key: &str) -> Transaction {
        let mut rw = ReadWriteSet::new();
        rw.writes.put(key, vec![n as u8]);
        tx(n, rw)
    }

    #[test]
    fn hot_key_degenerates_to_one_chain() {
        let txs: Vec<Transaction> = (0..6).map(|n| write_tx(n, "hot")).collect();
        let chains = conflict_chains(&txs, &[]);
        assert_eq!(chains, vec![vec![0, 1, 2, 3, 4, 5]]);
    }

    #[test]
    fn disjoint_keys_give_one_chain_per_tx() {
        let txs: Vec<Transaction> = (0..5).map(|n| write_tx(n, &format!("k{n}"))).collect();
        let chains = conflict_chains(&txs, &[]);
        assert_eq!(chains, (0..5).map(|n| vec![n]).collect::<Vec<_>>());
    }

    #[test]
    fn reads_link_chains_too() {
        // tx0 writes a, tx1 writes b, tx2 reads a and writes b:
        // tx2 bridges both into one chain.
        let mut rw = ReadWriteSet::new();
        rw.reads.record("a", Some(Height::new(1, 0)));
        rw.writes.put("b", b"x".to_vec());
        let txs = vec![write_tx(0, "a"), write_tx(1, "b"), tx(2, rw)];
        let chains = conflict_chains(&txs, &[]);
        assert_eq!(chains, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn pre_decided_transactions_are_excluded() {
        let txs: Vec<Transaction> = (0..4).map(|n| write_tx(n, "hot")).collect();
        let pre = vec![
            None,
            Some(ValidationCode::DuplicateTxId),
            None,
            Some(ValidationCode::EndorsementPolicyFailure),
        ];
        let chains = conflict_chains(&txs, &pre);
        assert_eq!(chains, vec![vec![0, 2]]);
    }

    #[test]
    fn key_less_transactions_form_singleton_chains() {
        let txs = vec![
            tx(0, ReadWriteSet::new()),
            write_tx(1, "k"),
            tx(2, ReadWriteSet::new()),
        ];
        let chains = conflict_chains(&txs, &[]);
        assert_eq!(chains, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn chains_are_deterministic_and_partition_the_block() {
        // Mixed workload: two hot keys, some disjoint, one bridge.
        let mut txs: Vec<Transaction> = Vec::new();
        for n in 0..4 {
            txs.push(write_tx(n, "hot-a"));
        }
        for n in 4..8 {
            txs.push(write_tx(n, "hot-b"));
        }
        for n in 8..12 {
            txs.push(write_tx(n, &format!("solo-{n}")));
        }
        let chains = conflict_chains(&txs, &[]);
        let again = conflict_chains(&txs, &[]);
        assert_eq!(chains, again);
        let mut all: Vec<usize> = chains.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..12).collect::<Vec<_>>(), "partition");
        for chain in &chains {
            assert!(chain.windows(2).all(|w| w[0] < w[1]), "ascending order");
        }
        assert_eq!(chains.len(), 6);
    }

    #[test]
    fn empty_block_yields_no_chains() {
        assert!(conflict_chains(&[], &[]).is_empty());
    }
}
