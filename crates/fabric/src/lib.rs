//! A Hyperledger-Fabric-like permissioned blockchain substrate with the
//! full Execute–Order–Validate (EOV) transaction lifecycle, running on the
//! deterministic discrete-event simulator of `fabriccrdt-sim`.
//!
//! The paper's evaluation (§7.2) runs Fabric v1.4 on a Kubernetes cluster;
//! this crate re-creates the *peer-internal* behaviour that evaluation
//! measures — endorsement, ordering with Fabric's block-cutting rules,
//! endorsement-policy validation, sequential MVCC validation and commit —
//! while network and crypto latencies are drawn from calibrated models
//! (see DESIGN.md §1).
//!
//! Modules:
//!
//! - [`config`]: network topology and block-cutting parameters.
//! - [`conflict`]: the decayed per-key conflict tracker behind
//!   [`config::OrderingPolicy::Adaptive`] — hot-key EWMA fed back from
//!   finalize results, batch conflict-density scoring and
//!   predicted-doomed detection.
//! - [`channel`]: multi-channel sharding — channel identities,
//!   per-channel pipeline derivation, cross-channel transfer records
//!   and per-channel metric rollups.
//! - [`policy`]: endorsement policies (N-of over organizations).
//! - [`chaincode`]: the chaincode trait and shim (`get_state`,
//!   `put_state`, and FabricCRDT's `put_crdt`).
//! - [`latency`]: calibrated latency models for every pipeline hop.
//! - [`cost`]: the work-to-simulated-time cost model for validation and
//!   commit.
//! - [`orderer`]: the ordering service (total order + block cutting by
//!   count/bytes/timeout).
//! - [`validator`]: the pluggable block-validation trait;
//!   [`validator::FabricValidator`] is vanilla Fabric MVCC. (FabricCRDT's
//!   merging validator lives in the `fabriccrdt` core crate.)
//! - [`pipeline`]: the commit-path validation pipeline seam —
//!   sequential (seed-identical) or pool-backed parallel execution with
//!   an order-preserving join.
//! - [`pool`]: the persistent worker pool behind parallel pipelines
//!   (threads spawned once per peer, parked between blocks).
//! - [`schedule`]: the conflict-graph scheduler bucketing a block's
//!   transactions into key-disjoint chains for the parallel finalize
//!   stage.
//! - [`state`]: the key-hash sharded world state those chains commit
//!   through.
//! - [`peer`]: the committing peer: duplicate detection, endorsement
//!   verification, validator dispatch, staged commits.
//! - [`storage`]: durable peer storage — backend selection, snapshot
//!   cadence, frontier-driven GC coordination and crash recovery over
//!   `fabriccrdt_ledger::store`.
//! - [`metrics`]: per-transaction lifecycle records and run metrics.
//! - [`simulation`]: the event-driven pipeline tying it all together.
//!
//! # Examples
//!
//! See `examples/quickstart.rs` at the repository root for an end-to-end
//! run, and the `fabriccrdt-workload` crate for the paper's experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaincode;
pub mod channel;
pub mod config;
pub mod conflict;
pub mod cost;
pub mod latency;
pub mod metrics;
pub mod orderer;
pub mod peer;
pub mod pipeline;
pub mod policy;
pub mod pool;
pub mod reorder;
pub mod schedule;
pub mod simulation;
pub mod state;
pub mod storage;
pub mod validator;

pub use chaincode::{Chaincode, ChaincodeError, ChaincodeStub, ExecWork};
pub use channel::{
    ChannelId, ChannelRunMetrics, ChannelSpec, MultiChannelConfig, MultiChannelMetrics, TransferId,
    TransferOutcome, TransferReport, TransferSpec,
};
pub use config::{
    AdaptiveConfig, BlockCutConfig, OrderingPolicy, PipelineConfig, RaftConfig, RetryPolicy,
    Topology,
};
pub use conflict::{BlockFeedback, ConflictTracker};
pub use cost::{CostModel, ValidationWork};
pub use latency::LatencyConfig;
pub use metrics::{OrderingMetrics, RunMetrics, TxRecord};
pub use orderer::Orderer;
pub use peer::{Peer, StagedBlock};
pub use pipeline::{PipelineRunner, ValidationPipeline};
pub use policy::EndorsementPolicy;
pub use schedule::conflict_chains;
pub use simulation::{OrderingBackend, OrderingOutcome, Simulation, SingleOrderer, TxRequest};
pub use state::ShardedState;
pub use validator::{BlockValidator, FabricValidator};
