//! Endorsement policies.
//!
//! An endorsement policy "specifies which peers from which organizations
//! are required to execute and sign the proposal" (§2.1). The common
//! Fabric forms — `AND(org1, org2, …)`, `OR(…)`, `OutOf(n, …)` — all
//! reduce to *n-of-m over organizations*, which is what this type models.

use std::fmt;

/// An n-of-m endorsement policy over organizations.
///
/// # Examples
///
/// ```
/// use fabriccrdt_fabric::EndorsementPolicy;
///
/// let policy = EndorsementPolicy::all_of(["org1", "org2", "org3"]);
/// assert!(policy.is_satisfied_by(["org1", "org2", "org3"]));
/// assert!(!policy.is_satisfied_by(["org1", "org2"]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndorsementPolicy {
    required: usize,
    orgs: Vec<String>,
}

impl EndorsementPolicy {
    /// `n`-of the listed organizations.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero, the org list is empty, or `n` exceeds the
    /// number of organizations.
    pub fn out_of<I, S>(n: usize, orgs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut orgs: Vec<String> = orgs.into_iter().map(Into::into).collect();
        orgs.sort_unstable();
        orgs.dedup();
        assert!(!orgs.is_empty(), "policy requires at least one org");
        assert!(
            n >= 1 && n <= orgs.len(),
            "policy threshold must be in 1..=orgs"
        );
        EndorsementPolicy { required: n, orgs }
    }

    /// `AND` over all listed organizations.
    pub fn all_of<I, S>(orgs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let orgs: Vec<String> = orgs.into_iter().map(Into::into).collect();
        let n = {
            let mut unique = orgs.clone();
            unique.sort_unstable();
            unique.dedup();
            unique.len()
        };
        Self::out_of(n, orgs)
    }

    /// `OR` over the listed organizations (any single one suffices).
    pub fn any_of<I, S>(orgs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self::out_of(1, orgs)
    }

    /// The organizations named by the policy.
    pub fn orgs(&self) -> &[String] {
        &self.orgs
    }

    /// How many distinct named organizations must endorse.
    pub fn required(&self) -> usize {
        self.required
    }

    /// Checks whether endorsements from `endorsing_orgs` satisfy the
    /// policy. Duplicate org entries count once; unknown orgs are ignored.
    pub fn is_satisfied_by<I, S>(&self, endorsing_orgs: I) -> bool
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut seen: Vec<&String> = Vec::new();
        for org in endorsing_orgs {
            if let Some(known) = self.orgs.iter().find(|o| o.as_str() == org.as_ref()) {
                if !seen.contains(&known) {
                    seen.push(known);
                }
            }
        }
        seen.len() >= self.required
    }
}

impl fmt::Display for EndorsementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OutOf({}, {})", self.required, self.orgs.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_of_requires_every_org() {
        let p = EndorsementPolicy::all_of(["org1", "org2"]);
        assert!(p.is_satisfied_by(["org1", "org2"]));
        assert!(p.is_satisfied_by(["org2", "org1", "org1"]));
        assert!(!p.is_satisfied_by(["org1"]));
        assert!(!p.is_satisfied_by(Vec::<&str>::new()));
    }

    #[test]
    fn any_of_requires_one() {
        let p = EndorsementPolicy::any_of(["org1", "org2", "org3"]);
        assert!(p.is_satisfied_by(["org2"]));
        assert!(!p.is_satisfied_by(["org9"]));
    }

    #[test]
    fn out_of_threshold() {
        let p = EndorsementPolicy::out_of(2, ["org1", "org2", "org3"]);
        assert!(p.is_satisfied_by(["org1", "org3"]));
        assert!(!p.is_satisfied_by(["org3"]));
        assert_eq!(p.required(), 2);
    }

    #[test]
    fn unknown_orgs_do_not_count() {
        let p = EndorsementPolicy::out_of(2, ["org1", "org2"]);
        assert!(!p.is_satisfied_by(["org1", "mallory", "intruder"]));
    }

    #[test]
    fn duplicate_orgs_count_once() {
        let p = EndorsementPolicy::out_of(2, ["org1", "org2"]);
        assert!(!p.is_satisfied_by(["org1", "org1", "org1"]));
    }

    #[test]
    fn constructor_dedupes_org_list() {
        let p = EndorsementPolicy::all_of(["org1", "org1", "org2"]);
        assert_eq!(p.orgs().len(), 2);
        assert_eq!(p.required(), 2);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn zero_threshold_panics() {
        EndorsementPolicy::out_of(0, ["org1"]);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn excessive_threshold_panics() {
        EndorsementPolicy::out_of(3, ["org1", "org2"]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_orgs_panics() {
        EndorsementPolicy::out_of(1, Vec::<&str>::new());
    }

    #[test]
    fn display() {
        let p = EndorsementPolicy::out_of(2, ["b", "a"]);
        assert_eq!(p.to_string(), "OutOf(2, a, b)");
    }
}
