//! Key-hash sharded world state for the parallel finalize stage.
//!
//! The sequential commit path owns a single [`WorldState`] `BTreeMap`;
//! parallel conflict chains instead commit through a [`ShardedState`]:
//! a copy-on-write overlay over the pre-block state, with the overlay
//! split into [`SHARDS`] independently locked hash buckets so chains
//! touching disjoint keys never contend (the key-disjointness insight
//! of Meir et al., *Lockless Transaction Isolation in Hyperledger
//! Fabric*). Reads fall through the overlay to the immutable base;
//! writes and deletes land only in the overlay, so constructing a
//! `ShardedState` costs one bulk `BTreeMap` clone — the same clone the
//! sequential path pays — instead of re-inserting every entry into hash
//! buckets (the first sharded design did exactly that, and its two
//! full-map rebuilds per block cost ~30% of the finalize stage at small
//! document sizes). Because the conflict-graph scheduler (see
//! [`crate::schedule`]) routes every key to exactly one chain, two
//! threads never race on a key — the per-shard mutexes only arbitrate
//! *map* structure, and each lock is held for single `put` / `delete` /
//! `version` calls, never across a wait.
//!
//! After the block's chains complete, [`ShardedState::into_world`]
//! folds the overlay back into the base `BTreeMap`. Each key lives in
//! exactly one shard, so the fold order across shards is immaterial and
//! the canonical sorted form — hence the byte encoding
//! ([`fabriccrdt_ledger::codec`]) — is independent of shard layout and
//! thread interleaving: part of the determinism argument in DESIGN.md
//! §4.10.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use fabriccrdt_jsoncrdt::op::fnv1a;
use fabriccrdt_ledger::mvcc::ChainState;
use fabriccrdt_ledger::version::Height;
use fabriccrdt_ledger::worldstate::VersionedValue;
use fabriccrdt_ledger::WorldState;

/// Number of lock shards (a power of two so the hash folds with a
/// mask). 32 comfortably exceeds any worker count we spawn.
pub const SHARDS: usize = 32;

/// An overlay entry: `Some` is a committed write, `None` a delete.
type OverlayEntry = Option<VersionedValue>;

/// A [`WorldState`] behind a sharded copy-on-write overlay (see module
/// docs).
#[derive(Debug)]
pub struct ShardedState {
    base: Arc<WorldState>,
    shards: Vec<Mutex<HashMap<String, OverlayEntry>>>,
}

fn shard_of(key: &str) -> usize {
    fnv1a(key.as_bytes()) as usize & (SHARDS - 1)
}

impl ShardedState {
    /// Snapshots `world` as the immutable read base (one bulk clone;
    /// overlays start empty).
    pub fn from_world(world: &WorldState) -> Self {
        Self::from_shared(Arc::new(world.clone()))
    }

    /// Uses an already-shared state epoch as the immutable read base —
    /// *zero* clones up front. This is the pipelined peer's path: its
    /// world state lives behind an `Arc` pointer that commits swap
    /// (see [`crate::peer::Peer`]), so finalize borrows the same epoch
    /// the lockless pre-validation snapshots point at. The bulk clone
    /// that [`ShardedState::from_world`] pays on entry moves to
    /// [`ShardedState::into_world`] (which clones only if the `Arc` is
    /// still shared); total cost per block is unchanged.
    pub fn from_shared(base: Arc<WorldState>) -> Self {
        ShardedState {
            base,
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    /// Folds the overlay into the base, returning the canonical sorted
    /// form. Only keys the block actually wrote are touched, and each
    /// key lives in exactly one shard, so the result — and hence
    /// [`fabriccrdt_ledger::codec::encode_state`] — is independent of
    /// shard layout.
    pub fn into_world(self) -> WorldState {
        let mut world = Arc::try_unwrap(self.base).unwrap_or_else(|shared| (*shared).clone());
        for shard in self.shards {
            let entries = shard.into_inner().expect("state shard poisoned");
            for (key, entry) in entries {
                match entry {
                    Some(versioned) => {
                        world.put(key, versioned.value, versioned.version);
                    }
                    None => {
                        world.delete(&key);
                    }
                }
            }
        }
        world
    }

    /// Total number of live entries (base entries plus overlay inserts,
    /// minus overlay deletes).
    pub fn len(&self) -> usize {
        let mut len = self.base.len();
        for shard in &self.shards {
            for (key, entry) in shard.lock().expect("state shard poisoned").iter() {
                match (entry.is_some(), self.base.get(key).is_some()) {
                    (true, false) => len += 1,
                    (false, true) => len -= 1,
                    _ => {}
                }
            }
        }
        len
    }

    /// Whether no entry is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ChainState for ShardedState {
    fn version(&self, key: &str) -> Option<Height> {
        let shard = self.shards[shard_of(key)]
            .lock()
            .expect("state shard poisoned");
        match shard.get(key) {
            Some(entry) => entry.as_ref().map(|v| v.version),
            None => self.base.version(key),
        }
    }

    fn put(&self, key: String, value: Vec<u8>, version: Height) {
        self.shards[shard_of(&key)]
            .lock()
            .expect("state shard poisoned")
            .insert(key, Some(VersionedValue { value, version }));
    }

    fn delete(&self, key: &str) {
        self.shards[shard_of(key)]
            .lock()
            .expect("state shard poisoned")
            .insert(key.to_owned(), None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabriccrdt_ledger::codec;

    fn seeded_world(keys: usize) -> WorldState {
        let mut world = WorldState::new();
        for n in 0..keys {
            world.put(
                format!("key-{n}"),
                format!("value-{n}").into_bytes(),
                Height::new(1, n as u64),
            );
        }
        world
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        let world = seeded_world(100);
        let rebuilt = ShardedState::from_world(&world).into_world();
        assert_eq!(rebuilt, world);
        assert_eq!(codec::encode_state(&rebuilt), codec::encode_state(&world));
    }

    #[test]
    fn shared_base_roundtrips_without_disturbing_the_epoch() {
        let epoch = Arc::new(seeded_world(50));
        let sharded = ShardedState::from_shared(epoch.clone());
        sharded.put("key-3".into(), b"updated".to_vec(), Height::new(2, 0));
        sharded.delete("key-7");
        let world = sharded.into_world();
        // The caller's epoch pointer still sees the pre-block state...
        assert_eq!(epoch.version("key-3"), Some(Height::new(1, 3)));
        assert_eq!(epoch.len(), 50);
        // ...while the folded result matches the from_world path.
        let reference = ShardedState::from_world(&epoch);
        reference.put("key-3".into(), b"updated".to_vec(), Height::new(2, 0));
        reference.delete("key-7");
        assert_eq!(world, reference.into_world());
        assert_eq!(world.len(), 49);
    }

    #[test]
    fn chain_state_operations_mirror_world_state() {
        let sharded = ShardedState::from_world(&seeded_world(10));
        assert_eq!(sharded.len(), 10);
        assert_eq!(sharded.version("key-3"), Some(Height::new(1, 3)));
        assert_eq!(sharded.version("missing"), None);

        sharded.put("key-3".into(), b"updated".to_vec(), Height::new(2, 0));
        sharded.put("fresh".into(), b"new".to_vec(), Height::new(2, 1));
        sharded.delete("key-7");

        let mut expect = seeded_world(10);
        expect.put("key-3".into(), b"updated".to_vec(), Height::new(2, 0));
        expect.put("fresh".into(), b"new".to_vec(), Height::new(2, 1));
        expect.delete("key-7");
        assert_eq!(sharded.into_world(), expect);
    }

    #[test]
    fn overlay_shadows_the_base() {
        let sharded = ShardedState::from_world(&seeded_world(4));
        sharded.put("key-1".into(), b"new".to_vec(), Height::new(9, 0));
        sharded.delete("key-2");
        assert_eq!(sharded.version("key-1"), Some(Height::new(9, 0)));
        assert_eq!(sharded.version("key-2"), None, "delete masks the base");
        assert_eq!(sharded.version("key-0"), Some(Height::new(1, 0)));
        assert_eq!(sharded.len(), 3);
    }

    #[test]
    fn empty_world_roundtrips() {
        let sharded = ShardedState::from_world(&WorldState::new());
        assert!(sharded.is_empty());
        assert!(sharded.into_world().is_empty());
    }

    #[test]
    fn concurrent_disjoint_writes_land() {
        let sharded = std::sync::Arc::new(ShardedState::from_world(&WorldState::new()));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let sharded = sharded.clone();
                scope.spawn(move || {
                    for n in 0..50u64 {
                        sharded.put(
                            format!("t{t}-k{n}"),
                            vec![t as u8, n as u8],
                            Height::new(t, n),
                        );
                    }
                });
            }
        });
        let world = std::sync::Arc::try_unwrap(sharded).unwrap().into_world();
        assert_eq!(world.len(), 200);
        assert_eq!(world.value("t2-k49"), Some(&[2u8, 49][..]));
    }
}
