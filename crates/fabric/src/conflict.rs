//! Conflict-aware ordering support: the decayed per-key write/conflict
//! tracker behind [`crate::config::OrderingPolicy::Adaptive`].
//!
//! "Performance Optimization of High-Conflict Transactions within the
//! Hyperledger Fabric Blockchain" (arXiv 2407.19732) observes that
//! under hot-key skew the orderer should *know* which keys are hot and
//! spend reordering effort only where it pays. This module implements
//! the measurement half of that idea:
//!
//! - [`ConflictTracker`] keeps one exponentially decayed moving average
//!   per key for *writes* (how often the key is written by committed
//!   transactions) and *conflicts* (how often a transaction touching
//!   the key failed MVCC validation or was early-aborted at the
//!   orderer). Finalize results flow back from the committing peer as
//!   [`BlockFeedback`] via `OrderingBackend::observe_finalized`.
//! - [`ConflictTracker::batch_conflict_density`] scores a pending batch
//!   as the fraction of its transactions touching a hot key — the
//!   signal the adaptive orderer compares against its density threshold
//!   to decide whether the Tarjan/Kahn reordering pass is worth its
//!   cost for this batch.
//!
//! Everything here is deterministic plain data: the tracker draws no
//! randomness, iterates keys in `BTreeMap` order, and can be cloned
//! wholesale — the Raft cluster keeps a master copy that survives
//! leader crashes and installs a clone into every freshly elected
//! leader's orderer (failover-safe hot-key state).

use std::collections::BTreeMap;

use fabriccrdt_ledger::block::Block;
use fabriccrdt_ledger::transaction::Transaction;

/// Scores below this are pruned after decay: a key nobody has touched
/// for a few dozen blocks costs nothing.
const PRUNE_BELOW: f64 = 1e-3;

/// Decayed per-key activity.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KeyHeat {
    /// Decayed writes-per-block EWMA.
    pub writes: f64,
    /// Decayed conflicts-per-block EWMA (MVCC failures at finalize plus
    /// early aborts at the orderer).
    pub conflicts: f64,
}

/// Per-block finalize results, reduced to what the conflict tracker
/// needs: which keys were written by committed transactions and which
/// keys were touched by transactions that failed MVCC validation.
///
/// Built by the simulation driver from the committed tip block (one
/// entry per key *occurrence*, so a block with three failures on `hot`
/// bumps `hot` three times).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlockFeedback {
    /// Keys written by successfully committed transactions.
    pub writes: Vec<String>,
    /// Keys read or written by transactions that failed MVCC
    /// validation.
    pub conflicts: Vec<String>,
}

impl BlockFeedback {
    /// Reduces a committed block (transactions zipped with their
    /// validation codes) to tracker feedback.
    pub fn from_block(block: &Block) -> Self {
        let mut feedback = BlockFeedback::default();
        for (tx, code) in block.transactions.iter().zip(&block.validation_codes) {
            if code.is_success() {
                for (key, _) in tx.rwset.writes.iter() {
                    feedback.writes.push(key.to_owned());
                }
            } else if matches!(code, fabriccrdt_ledger::block::ValidationCode::MvccConflict) {
                for (key, _) in tx.rwset.reads.iter() {
                    feedback.conflicts.push(key.to_owned());
                }
                for (key, _) in tx.rwset.writes.iter() {
                    if tx.rwset.reads.get(key).is_none() {
                        feedback.conflicts.push(key.to_owned());
                    }
                }
            }
        }
        feedback
    }
}

/// Decayed per-key write/conflict EWMA at the ordering service.
///
/// One observation round per finalized block: every tracked score is
/// multiplied by `decay`, then the round's occurrences are added with
/// weight `1 - decay` each (a standard EWMA, so a key conflicting `c`
/// times per block converges to a conflict score of `c · (1 − decay)
/// / (1 − decay) = c`... scores are in units of occurrences-per-block).
#[derive(Debug, Clone, PartialEq)]
pub struct ConflictTracker {
    decay: f64,
    keys: BTreeMap<String, KeyHeat>,
    blocks_observed: u64,
}

impl ConflictTracker {
    /// Creates a tracker.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < decay < 1`.
    pub fn new(decay: f64) -> Self {
        assert!(
            decay > 0.0 && decay < 1.0,
            "EWMA decay must be in (0, 1), got {decay}"
        );
        ConflictTracker {
            decay,
            keys: BTreeMap::new(),
            blocks_observed: 0,
        }
    }

    /// Observation rounds absorbed so far.
    pub fn blocks_observed(&self) -> u64 {
        self.blocks_observed
    }

    /// Number of keys currently tracked (pruned of cold entries).
    pub fn tracked_keys(&self) -> usize {
        self.keys.len()
    }

    /// The decayed scores for `key` (zeros when untracked).
    pub fn heat(&self, key: &str) -> KeyHeat {
        self.keys.get(key).copied().unwrap_or_default()
    }

    /// Absorbs one finalized block's feedback: one decay round plus the
    /// fresh write/conflict occurrences.
    pub fn observe(&mut self, feedback: &BlockFeedback) {
        self.decay_round();
        let fresh = 1.0 - self.decay;
        for key in &feedback.writes {
            self.keys.entry(key.clone()).or_default().writes += fresh;
        }
        for key in &feedback.conflicts {
            self.keys.entry(key.clone()).or_default().conflicts += fresh;
        }
        self.blocks_observed += 1;
    }

    /// Absorbs the orderer's own early aborts (conflicts discovered at
    /// block cut, before validation). Counting them keeps hot keys hot
    /// while reordering is engaged — otherwise conflicts converted to
    /// early aborts would decay the very signal that triggered
    /// reordering, and the adaptive policy would oscillate.
    ///
    /// Not a decay round: the aborts belong to the batch whose
    /// finalize feedback will perform the round.
    pub fn observe_aborts(&mut self, aborted: &[Transaction]) {
        let fresh = 1.0 - self.decay;
        for tx in aborted {
            for (key, _) in tx.rwset.reads.iter() {
                self.keys.entry(key.to_owned()).or_default().conflicts += fresh;
            }
        }
    }

    fn decay_round(&mut self) {
        let decay = self.decay;
        for heat in self.keys.values_mut() {
            heat.writes *= decay;
            heat.conflicts *= decay;
        }
        self.keys
            .retain(|_, h| h.writes >= PRUNE_BELOW || h.conflicts >= PRUNE_BELOW);
    }

    /// Fraction of `batch` whose transactions touch at least one key
    /// with a conflict score of `hot_key_threshold` or more. 0.0 for an
    /// empty batch or a cold tracker — the adaptive orderer then skips
    /// the reordering pass entirely.
    pub fn batch_conflict_density(&self, batch: &[Transaction], hot_key_threshold: f64) -> f64 {
        if batch.is_empty() || self.keys.is_empty() {
            return 0.0;
        }
        let hot = batch
            .iter()
            .filter(|tx| {
                tx.rwset
                    .reads
                    .iter()
                    .map(|(key, _)| key)
                    .chain(tx.rwset.writes.iter().map(|(key, _)| key))
                    .any(|key| self.heat(key).conflicts >= hot_key_threshold)
            })
            .count();
        hot as f64 / batch.len() as f64
    }

    /// Transactions of `batch` predicted doomed by history: for every
    /// key with a conflict score at or above `threshold`, all but the
    /// first read-modify-write transaction on that key are marked (the
    /// first can still commit; the rest form the conflict clique that
    /// reordering would abort anyway — this catches them in one linear
    /// pass). Returns batch indices in ascending order.
    pub fn predicted_doomed(&self, batch: &[Transaction], threshold: f64) -> Vec<usize> {
        let mut first_rmw: BTreeMap<&str, usize> = BTreeMap::new();
        let mut doomed = Vec::new();
        for (i, tx) in batch.iter().enumerate() {
            let mut is_doomed = false;
            for (key, _) in tx.rwset.reads.iter() {
                if tx.rwset.writes.get(key).is_none() {
                    continue; // not a read-modify-write on this key
                }
                if self.heat(key).conflicts < threshold {
                    continue;
                }
                match first_rmw.get(key as &str) {
                    None => {
                        first_rmw.insert(key, i);
                    }
                    Some(_) => is_doomed = true,
                }
            }
            if is_doomed {
                doomed.push(i);
            }
        }
        doomed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabriccrdt_crypto::Identity;
    use fabriccrdt_ledger::block::ValidationCode;
    use fabriccrdt_ledger::rwset::ReadWriteSet;
    use fabriccrdt_ledger::transaction::TxId;
    use fabriccrdt_ledger::version::Height;

    fn tx(n: u64, reads: &[&str], writes: &[&str]) -> Transaction {
        let client = Identity::new("client", "org1");
        let mut rwset = ReadWriteSet::new();
        for key in reads {
            rwset.reads.record(*key, Some(Height::new(1, 0)));
        }
        for key in writes {
            rwset.writes.put(*key, vec![n as u8]);
        }
        Transaction {
            id: TxId::derive(&client, n, "cc"),
            client,
            chaincode: "cc".into(),
            rwset,
            endorsements: Vec::new(),
        }
    }

    #[test]
    fn conflicts_accumulate_and_decay() {
        let mut tracker = ConflictTracker::new(0.5);
        let feedback = BlockFeedback {
            writes: vec!["w".into()],
            conflicts: vec!["hot".into(), "hot".into()],
        };
        tracker.observe(&feedback);
        let after_one = tracker.heat("hot").conflicts;
        assert!((after_one - 1.0).abs() < 1e-9); // 2 × (1 − 0.5)
        assert!((tracker.heat("w").writes - 0.5).abs() < 1e-9);
        // A quiet round halves the scores.
        tracker.observe(&BlockFeedback::default());
        assert!((tracker.heat("hot").conflicts - 0.5).abs() < 1e-9);
        assert_eq!(tracker.blocks_observed(), 2);
    }

    #[test]
    fn cold_keys_are_pruned() {
        let mut tracker = ConflictTracker::new(0.2);
        tracker.observe(&BlockFeedback {
            writes: Vec::new(),
            conflicts: vec!["k".into()],
        });
        assert_eq!(tracker.tracked_keys(), 1);
        for _ in 0..20 {
            tracker.observe(&BlockFeedback::default());
        }
        assert_eq!(tracker.tracked_keys(), 0, "decayed-out keys must not leak");
        assert_eq!(tracker.heat("k"), KeyHeat::default());
    }

    #[test]
    fn density_is_fraction_of_hot_transactions() {
        let mut tracker = ConflictTracker::new(0.5);
        for _ in 0..8 {
            tracker.observe(&BlockFeedback {
                writes: Vec::new(),
                conflicts: vec!["hot".into(), "hot".into()],
            });
        }
        assert!(tracker.heat("hot").conflicts > 1.0);
        let batch = vec![
            tx(0, &["hot"], &["hot"]),
            tx(1, &["cold"], &["cold"]),
            tx(2, &[], &["hot"]),
            tx(3, &["other"], &["other"]),
        ];
        let density = tracker.batch_conflict_density(&batch, 1.0);
        assert!((density - 0.5).abs() < 1e-9, "2 of 4 touch the hot key");
        // A cold tracker reports zero density without iterating.
        assert_eq!(
            ConflictTracker::new(0.5).batch_conflict_density(&batch, 1.0),
            0.0
        );
        assert_eq!(tracker.batch_conflict_density(&[], 1.0), 0.0);
    }

    #[test]
    fn predicted_doomed_keeps_first_rmw_per_hot_key() {
        let mut tracker = ConflictTracker::new(0.5);
        for _ in 0..8 {
            tracker.observe(&BlockFeedback {
                writes: Vec::new(),
                conflicts: vec!["hot".into()],
            });
        }
        let batch = vec![
            tx(0, &["hot"], &["hot"]),   // first RMW: survives
            tx(1, &["hot"], &["p"]),     // pure reader: not doomed
            tx(2, &["hot"], &["hot"]),   // second RMW: doomed
            tx(3, &["cold"], &["cold"]), // cold key: untouched
            tx(4, &["hot"], &["hot"]),   // third RMW: doomed
        ];
        assert_eq!(tracker.predicted_doomed(&batch, 0.9), vec![2, 4]);
        // Below-threshold history dooms nothing.
        assert!(tracker.predicted_doomed(&batch, 10.0).is_empty());
    }

    #[test]
    fn feedback_from_block_splits_writes_and_conflicts() {
        use fabriccrdt_ledger::block::Block;
        let mut block =
            Block::assemble(1, [0; 32], vec![tx(0, &[], &["a"]), tx(1, &["b"], &["c"])]);
        block.validation_codes = vec![ValidationCode::Valid, ValidationCode::MvccConflict];
        let feedback = BlockFeedback::from_block(&block);
        assert_eq!(feedback.writes, vec!["a".to_owned()]);
        assert_eq!(feedback.conflicts, vec!["b".to_owned(), "c".to_owned()]);
    }

    #[test]
    fn observe_aborts_heats_read_keys() {
        let mut tracker = ConflictTracker::new(0.5);
        tracker.observe_aborts(&[tx(0, &["hot"], &["hot"])]);
        assert!((tracker.heat("hot").conflicts - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "decay")]
    fn bad_decay_panics() {
        ConflictTracker::new(1.0);
    }
}
