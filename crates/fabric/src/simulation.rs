//! The event-driven transaction pipeline.
//!
//! Ties the pieces together into the paper's Figure 1/2 flow:
//!
//! 1. **Execution & endorsement** — the client sends the proposal to one
//!    peer per organization named in the policy; the chaincode executes
//!    against the committed world state (isolated simulation), each
//!    endorser signs the response payload.
//! 2. **Ordering** — the client submits the endorsed transaction; the
//!    orderer totally orders transactions and cuts blocks by
//!    count/bytes/timeout.
//! 3. **Validation & commit** — the committing peer verifies
//!    endorsements, runs the pluggable validator (MVCC or CRDT merge) and
//!    installs the result. Peers process blocks sequentially; commit
//!    compute time is charged from the work actually performed.
//!
//! Modelling notes (see DESIGN.md §1): all endorsing peers hold identical
//! replicas, so the chaincode executes once per transaction (each
//! endorser is charged its latency, and all sign the same read-write
//! set); block delivery is FIFO per channel, as in Fabric's delivery
//! service; endorser CPU is assumed to scale out (the paper's bottleneck
//! is the commit path).

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

use fabriccrdt_crypto::{Identity, KeyPair};
use fabriccrdt_ledger::block::Block;
use fabriccrdt_ledger::transaction::{Endorsement, Transaction, TxId};
use fabriccrdt_sim::queue::EventQueue;
use fabriccrdt_sim::rng::SimRng;
use fabriccrdt_sim::time::SimTime;

use crate::chaincode::{ChaincodeEvent, ChaincodeRegistry, ChaincodeStub};
use crate::config::PipelineConfig;
use crate::conflict::BlockFeedback;
use crate::latency::LatencyConfig;
use crate::metrics::{
    AdversaryMetrics, CommittedEvent, ConflictPolicyMetrics, DecodeCacheMetrics,
    DisseminationMetrics, OrderingMetrics, RetryMetrics, RunMetrics, TxRecord,
};
use crate::orderer::{Orderer, TimeoutRequest};
use crate::peer::{Peer, PreparedBlock, StagedBlock};
use crate::validator::BlockValidator;

/// The pluggable block-dissemination layer between the orderer and the
/// committing peer.
///
/// The default, [`IdealFifoDelivery`], reproduces the original pipeline
/// exactly: one sampled orderer→peer hop per block, delivered in FIFO
/// order. The `fabriccrdt-gossip` crate provides an alternative that
/// routes every block through a simulated gossip network (leader pull,
/// push gossip, anti-entropy) with fault injection, and reports
/// dissemination metrics.
pub trait DeliveryLayer {
    /// Returns the time at which `block`, cut by the orderer at `now`,
    /// becomes available to the committing peer. Implementations must
    /// be monotone: successive calls return non-decreasing times (block
    /// delivery is FIFO per channel, as in Fabric's delivery service).
    fn deliver(
        &mut self,
        now: SimTime,
        block: &Block,
        latency: &LatencyConfig,
        rng: &mut SimRng,
    ) -> SimTime;

    /// Mirrors [`Simulation::seed_state`] into any replicas the layer
    /// maintains, so their world state matches the committing peer's.
    fn seed_state(&mut self, _key: &str, _value: &[u8]) {}

    /// Hands over dissemination metrics accumulated since the last
    /// call, if this layer collects any.
    fn take_dissemination(&mut self) -> Option<DisseminationMetrics> {
        None
    }

    /// Hands over byzantine-screen detection counters accumulated
    /// since the last call, if this layer runs an adversary schedule.
    fn take_adversary(&mut self) -> Option<AdversaryMetrics> {
        None
    }
}

/// The original ideal dissemination model: each block takes one sampled
/// orderer→peer hop, and delivery order is forced FIFO. Draws exactly
/// one `orderer_to_peer` sample per block from the pipeline rng, so
/// runs with this layer are bit-identical to the pre-gossip pipeline.
#[derive(Debug, Default)]
pub struct IdealFifoDelivery {
    last_delivery: SimTime,
}

impl IdealFifoDelivery {
    /// Creates the layer.
    pub fn new() -> Self {
        IdealFifoDelivery::default()
    }
}

impl DeliveryLayer for IdealFifoDelivery {
    fn deliver(
        &mut self,
        now: SimTime,
        _block: &Block,
        latency: &LatencyConfig,
        rng: &mut SimRng,
    ) -> SimTime {
        let hop = latency.orderer_to_peer.sample(rng);
        let at = (now + hop).max(self.last_delivery);
        self.last_delivery = at;
        at
    }
}

/// What one interaction with an [`OrderingBackend`] produced.
#[derive(Debug, Default)]
pub struct OrderingOutcome {
    /// Blocks the ordering service committed, with their commit times,
    /// in commit order. Commit times never exceed the interaction's
    /// `now` (a backend cannot report the future — it asks to be woken
    /// instead).
    pub blocks: Vec<(SimTime, Block)>,
    /// A batch timeout the pipeline must arm (the single orderer's
    /// cutting timer). Replicated backends run their timers internally
    /// and use `wakeup` instead.
    pub timeout: Option<TimeoutRequest>,
    /// The backend's next internal event time, if it has outstanding
    /// work (replication in flight, armed timers, scheduled faults).
    /// The pipeline schedules a wakeup so the backend's internal clock
    /// keeps pace with simulated time; `None` means the backend is
    /// quiescent until the next submission.
    pub wakeup: Option<SimTime>,
}

impl OrderingOutcome {
    /// Nothing happened: no blocks, no timers.
    pub fn empty() -> Self {
        OrderingOutcome::default()
    }
}

/// The pluggable ordering service behind the pipeline.
///
/// The default, [`SingleOrderer`], wraps the original in-process
/// [`Orderer`] and reproduces the pre-seam pipeline bit for bit. The
/// `fabriccrdt-ordering` crate provides a Raft-replicated cluster
/// (leader election, log replication, crash/partition fault injection)
/// behind the same seam, reporting [`OrderingMetrics`].
pub trait OrderingBackend {
    /// An endorsed transaction reaches the ordering service at `now`.
    fn submit(&mut self, tx: Transaction, now: SimTime) -> OrderingOutcome;

    /// A batch timeout previously returned in
    /// [`OrderingOutcome::timeout`] fires at `now`.
    fn timeout_fired(&mut self, timeout: TimeoutRequest, now: SimTime) -> OrderingOutcome;

    /// A wakeup previously requested via [`OrderingOutcome::wakeup`]
    /// fires at `now` — advance internal timers/replication up to `now`.
    fn wakeup(&mut self, _now: SimTime) -> OrderingOutcome {
        OrderingOutcome::empty()
    }

    /// Drains transactions the ordering service early-aborted at block
    /// cut (Fabric++ reordering) since the last call.
    fn take_early_aborted(&mut self) -> Vec<Transaction> {
        Vec::new()
    }

    /// Hands over ordering-cluster metrics accumulated since the last
    /// call, if this backend collects any.
    fn take_ordering_metrics(&mut self) -> Option<OrderingMetrics> {
        None
    }

    /// Feeds a committed block's validation outcome back to the
    /// ordering service's conflict tracker. Only called when the run's
    /// effective policy is [`crate::config::OrderingPolicy::Adaptive`];
    /// backends without a tracker ignore it.
    fn observe_finalized(&mut self, _feedback: &BlockFeedback) {}

    /// Hands over ordering-policy decision counters, if this backend
    /// runs a non-FIFO cut policy.
    fn take_policy_metrics(&mut self) -> Option<ConflictPolicyMetrics> {
        None
    }
}

/// The original single in-process ordering service behind the
/// [`OrderingBackend`] seam. Emits every cut block at the interaction
/// time, arms the pipeline-level batch timeout, never requests wakeups
/// — runs with this backend are bit-identical to the pre-seam pipeline.
#[derive(Debug)]
pub struct SingleOrderer {
    orderer: Orderer,
}

impl SingleOrderer {
    /// Wraps a block-cutting orderer.
    pub fn new(orderer: Orderer) -> Self {
        SingleOrderer { orderer }
    }

    /// Builds the backend a pipeline configuration asks for (honoring
    /// [`PipelineConfig::effective_ordering_policy`], which folds the
    /// legacy `config.reorder` flag in).
    pub fn from_config(config: &PipelineConfig) -> Self {
        SingleOrderer::new(Orderer::with_policy(
            config.block_cut,
            config.effective_ordering_policy(),
        ))
    }
}

impl OrderingBackend for SingleOrderer {
    fn submit(&mut self, tx: Transaction, now: SimTime) -> OrderingOutcome {
        let (block, timeout) = self.orderer.receive(tx, now);
        OrderingOutcome {
            blocks: block.map(|b| (now, b)).into_iter().collect(),
            timeout,
            wakeup: None,
        }
    }

    fn timeout_fired(&mut self, timeout: TimeoutRequest, now: SimTime) -> OrderingOutcome {
        OrderingOutcome {
            blocks: self
                .orderer
                .timeout_fired(timeout)
                .map(|b| (now, b))
                .into_iter()
                .collect(),
            timeout: None,
            wakeup: None,
        }
    }

    fn take_early_aborted(&mut self) -> Vec<Transaction> {
        self.orderer.take_early_aborted()
    }

    fn observe_finalized(&mut self, feedback: &BlockFeedback) {
        self.orderer.observe_finalized(feedback);
    }

    fn take_policy_metrics(&mut self) -> Option<ConflictPolicyMetrics> {
        match self.orderer.policy() {
            crate::config::OrderingPolicy::Fifo => None,
            _ => Some(self.orderer.take_policy_stats()),
        }
    }
}

/// One transaction to submit: which chaincode to invoke with which
/// arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxRequest {
    /// Target chaincode name.
    pub chaincode: String,
    /// Invocation arguments.
    pub args: Vec<String>,
    /// Failure injection: corrupt one endorsement signature so the
    /// transaction fails endorsement-policy validation at commit time
    /// (exercises the rejection path end to end).
    pub corrupt_endorsement: bool,
}

impl TxRequest {
    /// Creates a request.
    pub fn new(chaincode: impl Into<String>, args: Vec<String>) -> Self {
        TxRequest {
            chaincode: chaincode.into(),
            args,
            corrupt_endorsement: false,
        }
    }

    /// Marks the request for endorsement corruption (failure injection).
    pub fn with_corrupt_endorsement(mut self) -> Self {
        self.corrupt_endorsement = true;
        self
    }
}

#[derive(Debug)]
enum Event {
    /// Client submits transaction `i` (records `submitted_at`).
    Submit(usize),
    /// Proposal arrived at the endorsers; execute and endorse.
    Endorse(usize),
    /// Endorsed transaction arrives at the orderer.
    OrdererReceive(usize),
    /// Batch timeout fired.
    OrdererTimeout(TimeoutRequest),
    /// A block arrives at the committing peer.
    DeliverBlock(Block),
    /// The peer finished processing the staged block.
    CommitDone,
    /// The ordering backend asked to be woken (internal Raft timers,
    /// in-flight replication). Never scheduled by [`SingleOrderer`].
    OrderingWakeup,
}

/// The simulated network: peers, orderer, clients, wiring.
///
/// Generic over the block-validation strategy `V` — plug in
/// [`crate::validator::FabricValidator`] for vanilla Fabric or the
/// `fabriccrdt` crate's merging validator for FabricCRDT.
pub struct Simulation<V: BlockValidator> {
    config: PipelineConfig,
    registry: ChaincodeRegistry,
    peer: Peer<V>,
    ordering: Box<dyn OrderingBackend>,
    /// Ordering-backend wakeups already scheduled (dedup so each
    /// internal event time gets exactly one pipeline event).
    armed_wakeups: BTreeSet<SimTime>,
    rng: SimRng,
    queue: EventQueue<Event>,
    requests: Vec<TxRequest>,
    records: Vec<TxRecord>,
    endorsed: Vec<Option<Transaction>>,
    index_by_id: HashMap<TxId, usize>,
    /// Resubmissions performed per request (client retries).
    attempts: Vec<usize>,
    /// Chaincode event emitted at endorsement, pending commit.
    pending_events: Vec<Option<ChaincodeEvent>>,
    /// Events of successfully committed transactions.
    committed_events: Vec<CommittedEvent>,
    /// Total resubmissions this run (reported via
    /// [`RunMetrics::resubmissions`]).
    resubmissions: u64,
    /// Abort-and-retry accounting (reported via [`RunMetrics::retry`]).
    retry: RetryMetrics,
    pending_blocks: VecDeque<Block>,
    staged: Option<StagedBlock>,
    /// Blocks whose pre-validation was started ahead of the in-flight
    /// block's commit ([`crate::pipeline::ValidationPipeline::Pipelined`]
    /// only), in arrival order.
    prepared: VecDeque<PreparedBlock>,
    /// Pipelined runs: blocks that arrived with the peer idle (no
    /// in-flight block to overlap with).
    stalls: u64,
    /// Pipelined runs: deepest `prepared` queue observed.
    max_ahead_depth: u64,
    delivery: Box<dyn DeliveryLayer>,
    /// Orderer-cut blocks in cut order, recorded when enabled via
    /// [`Simulation::enable_block_log`].
    block_log: Option<Vec<(SimTime, Block)>>,
    blocks_committed: u64,
    end_time: SimTime,
    /// Monotone nonce so transaction ids stay unique across retries and
    /// across multiple `run` calls on the same network.
    next_nonce: u64,
}

impl<V: BlockValidator> Simulation<V> {
    /// Builds a simulation from a configuration, a validator and the
    /// deployed chaincodes.
    pub fn new(config: PipelineConfig, validator: V, registry: ChaincodeRegistry) -> Self {
        Simulation::with_delivery(
            config,
            validator,
            registry,
            Box::new(IdealFifoDelivery::new()),
        )
    }

    /// Builds a simulation with an explicit block-dissemination layer
    /// (see [`DeliveryLayer`]). [`Simulation::new`] uses
    /// [`IdealFifoDelivery`].
    pub fn with_delivery(
        config: PipelineConfig,
        validator: V,
        registry: ChaincodeRegistry,
        delivery: Box<dyn DeliveryLayer>,
    ) -> Self {
        let ordering = Box::new(SingleOrderer::from_config(&config));
        Simulation::with_layers(config, validator, registry, delivery, ordering)
    }

    /// Builds a simulation with an explicit ordering backend (see
    /// [`OrderingBackend`]) and the default ideal FIFO delivery.
    /// [`Simulation::new`] uses [`SingleOrderer`].
    pub fn with_ordering(
        config: PipelineConfig,
        validator: V,
        registry: ChaincodeRegistry,
        ordering: Box<dyn OrderingBackend>,
    ) -> Self {
        Simulation::with_layers(
            config,
            validator,
            registry,
            Box::new(IdealFifoDelivery::new()),
            ordering,
        )
    }

    /// Builds a simulation with explicit dissemination *and* ordering
    /// layers — the fully general constructor the other three delegate
    /// to.
    pub fn with_layers(
        config: PipelineConfig,
        validator: V,
        registry: ChaincodeRegistry,
        delivery: Box<dyn DeliveryLayer>,
        ordering: Box<dyn OrderingBackend>,
    ) -> Self {
        let rng = SimRng::seed_from(config.seed);
        let peer = Peer::new(validator, config.policy.clone())
            .with_pipeline(config.validation)
            .with_channel(config.channel);
        Simulation {
            config,
            registry,
            peer,
            ordering,
            armed_wakeups: BTreeSet::new(),
            rng,
            queue: EventQueue::new(),
            requests: Vec::new(),
            records: Vec::new(),
            endorsed: Vec::new(),
            index_by_id: HashMap::new(),
            attempts: Vec::new(),
            pending_events: Vec::new(),
            committed_events: Vec::new(),
            resubmissions: 0,
            retry: RetryMetrics::default(),
            pending_blocks: VecDeque::new(),
            staged: None,
            prepared: VecDeque::new(),
            stalls: 0,
            max_ahead_depth: 0,
            delivery,
            block_log: None,
            blocks_committed: 0,
            end_time: SimTime::ZERO,
            next_nonce: 0,
        }
    }

    /// Seeds a key into every peer's world state before the run (§7.2).
    pub fn seed_state(&mut self, key: impl Into<String>, value: Vec<u8>) {
        let key = key.into();
        self.delivery.seed_state(&key, &value);
        self.peer.seed_state(key, value);
    }

    /// Read access to the committing peer (state, chain) — useful after
    /// the run and in examples.
    pub fn peer(&self) -> &Peer<V> {
        &self.peer
    }

    /// Starts recording every orderer-cut block with its cut time.
    /// Retrieve the log with [`Simulation::take_block_log`] after a run
    /// — e.g. to replay the same block stream through a standalone
    /// gossip network.
    pub fn enable_block_log(&mut self) {
        self.block_log = Some(Vec::new());
    }

    /// Takes the recorded `(cut time, block)` log (empty if logging was
    /// never enabled).
    pub fn take_block_log(&mut self) -> Vec<(SimTime, Block)> {
        self.block_log.take().unwrap_or_default()
    }

    /// Runs the pipeline over the given `(submission time, request)`
    /// schedule until every event drains, returning the run metrics.
    ///
    /// Takes `&mut self` so the peer (world state, blockchain) can be
    /// inspected afterwards. Each call is an independent run: records
    /// and counters reset, but committed ledger state persists, so a
    /// second call models a later workload phase on the same network.
    ///
    /// # Panics
    ///
    /// Panics if a request names an unknown chaincode — deploy it first
    /// via the registry.
    pub fn run(&mut self, schedule: Vec<(SimTime, TxRequest)>) -> RunMetrics {
        self.requests.clear();
        self.records.clear();
        self.endorsed.clear();
        self.index_by_id.clear();
        self.attempts.clear();
        self.pending_events.clear();
        self.committed_events.clear();
        self.resubmissions = 0;
        self.retry = RetryMetrics::default();
        self.blocks_committed = 0;
        self.end_time = SimTime::ZERO;
        self.armed_wakeups.clear();
        self.prepared.clear();
        self.stalls = 0;
        self.max_ahead_depth = 0;
        for (i, (at, request)) in schedule.into_iter().enumerate() {
            self.requests.push(request);
            self.records.push(TxRecord::default());
            self.endorsed.push(None);
            self.attempts.push(0);
            self.pending_events.push(None);
            self.queue.schedule(at, Event::Submit(i));
        }

        // The payload decode cache is process-wide, so this run's share
        // is a counter delta (saturating: a concurrent test may clear
        // the cache under us, which must not underflow).
        let cache_before = self.peer.validator().decode_cache_stats();

        while let Some((now, event)) = self.queue.pop() {
            self.handle(now, event);
        }

        let decode_cache = match (cache_before, self.peer.validator().decode_cache_stats()) {
            (Some(before), Some(after)) => Some(DecodeCacheMetrics {
                hits: after.hits.saturating_sub(before.hits),
                misses: after.misses.saturating_sub(before.misses),
                evictions: after.evictions.saturating_sub(before.evictions),
            }),
            _ => None,
        };

        // Overlap/stall counters are scheduling-descriptive (host
        // wall-clock concurrency), never simulation values, so they sit
        // outside `RunMetrics` equality — pipelined runs stay
        // metric-identical to sequential ones.
        let pipelined = self.config.validation.is_pipelined().then(|| {
            let mut stats = self.peer.take_pipeline_metrics();
            stats.blocks_stalled = self.stalls;
            stats.max_ahead_depth = self.max_ahead_depth;
            stats
        });

        RunMetrics {
            channel: self.config.channel,
            records: std::mem::take(&mut self.records),
            end_time: self.end_time,
            blocks_committed: self.blocks_committed,
            resubmissions: self.resubmissions,
            events: std::mem::take(&mut self.committed_events),
            dissemination: self.delivery.take_dissemination(),
            ordering: self.ordering.take_ordering_metrics(),
            decode_cache,
            adversary: self.delivery.take_adversary(),
            pipelined,
            retry: std::mem::take(&mut self.retry),
            conflict_policy: self.ordering.take_policy_metrics(),
        }
    }

    fn handle(&mut self, now: SimTime, event: Event) {
        match event {
            Event::Submit(i) => {
                self.records[i].submitted_at = now;
                let hop = self.config.latency.client_to_peer.sample(&mut self.rng);
                self.queue.schedule(now + hop, Event::Endorse(i));
            }
            Event::Endorse(i) => self.endorse(now, i),
            Event::OrdererReceive(i) => {
                let tx = self.endorsed[i]
                    .take()
                    .expect("transaction endorsed before ordering");
                let outcome = self.ordering.submit(tx, now);
                self.apply_ordering(now, outcome);
            }
            Event::OrdererTimeout(request) => {
                let outcome = self.ordering.timeout_fired(request, now);
                self.apply_ordering(now, outcome);
            }
            Event::OrderingWakeup => {
                self.armed_wakeups.remove(&now);
                let outcome = self.ordering.wakeup(now);
                self.apply_ordering(now, outcome);
            }
            Event::DeliverBlock(block) => {
                // Pipelined mode: a block arriving while another is in
                // flight starts its pure pre-validation immediately
                // (on the worker pool), overlapping the in-flight
                // block's finalize/commit. The duplicate context is the
                // union of every in-flight block's transaction ids —
                // exactly what `committed_ids` will hold by the time
                // this block's own finalize runs.
                let pipelined = self.config.validation.is_pipelined();
                if pipelined && (self.staged.is_some() || !self.prepared.is_empty()) {
                    let mut extra: HashSet<TxId> = HashSet::new();
                    if let Some(staged) = &self.staged {
                        extra.extend(staged.tx_ids());
                    }
                    for prep in &self.prepared {
                        extra.extend(prep.tx_ids());
                    }
                    let prep = self.peer.prevalidate_ahead(block, &extra);
                    self.prepared.push_back(prep);
                    self.max_ahead_depth = self.max_ahead_depth.max(self.prepared.len() as u64);
                } else {
                    if pipelined {
                        // Nothing in flight to overlap with: the
                        // pipeline stalls and this block runs like a
                        // sequential one.
                        self.stalls += 1;
                    }
                    self.pending_blocks.push_back(block);
                }
                self.maybe_start_processing(now);
            }
            Event::CommitDone => {
                let staged = self.staged.take().expect("a block was being processed");
                // Map validation codes back to request records.
                let tip = self
                    .peer
                    .commit(staged)
                    .expect("orderer blocks extend the chain in order");
                let adaptive = self.config.effective_ordering_policy().is_adaptive();
                let feedback = adaptive.then(|| BlockFeedback::from_block(tip));
                let updates: Vec<(usize, _, u64)> = tip
                    .transactions
                    .iter()
                    .zip(&tip.validation_codes)
                    .filter_map(|(tx, code)| {
                        self.index_by_id.get(&tx.id).map(|&idx| {
                            // Validation work the peer spent on this
                            // transaction: one unit per endorsement
                            // signature plus one per read-version check.
                            // Charged to `wasted_validation_work` when
                            // the verdict is a failure.
                            let work = (tx.endorsements.len() + tx.rwset.reads.len()) as u64;
                            (idx, *code, work)
                        })
                    })
                    .collect();
                if let Some(feedback) = feedback {
                    self.ordering.observe_finalized(&feedback);
                }
                for (idx, code, work) in updates {
                    self.records[idx].committed_at = Some(now);
                    self.records[idx].code = Some(code);
                    // Fabric's event service: chaincode events fire only
                    // for successfully committed transactions.
                    if code.is_success() {
                        if self.attempts[idx] > 0 {
                            self.retry.retry_success += 1;
                            self.retry
                                .retry_latency
                                .push(now - self.records[idx].submitted_at);
                        }
                        if let Some(event) = self.pending_events[idx].take() {
                            self.committed_events.push(CommittedEvent {
                                request: idx,
                                name: event.name,
                                payload: event.payload,
                                at: now,
                            });
                        }
                    } else {
                        self.retry.wasted_validation_work += work;
                    }
                    self.maybe_retry(now, idx, code);
                }
                self.blocks_committed += 1;
                self.end_time = self.end_time.max(now);
                self.maybe_start_processing(now);
            }
        }
    }

    /// Executes the chaincode once against the committed state, collects
    /// one endorsement per organization, and forwards to the orderer.
    fn endorse(&mut self, now: SimTime, i: usize) {
        let request = &self.requests[i];
        let chaincode = self
            .registry
            .get(&request.chaincode)
            .unwrap_or_else(|| panic!("chaincode {:?} not deployed", request.chaincode))
            .clone();

        let mut stub = ChaincodeStub::with_history(self.peer.state(), self.peer.history());
        if chaincode.invoke(&mut stub, &request.args).is_err() {
            // Proposal failed at execution: the client never submits a
            // transaction; the record keeps code = None (a failure).
            return;
        }
        let (rwset, exec_work, event) = stub.into_parts();
        self.pending_events[i] = event;
        let exec_cost = self.config.latency.cost.exec_cost(&exec_work);

        let client_id = i % self.config.topology.clients;
        let client = Identity::new(format!("client{client_id}"), "org1");
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        let id = TxId::derive(&client, nonce, &request.chaincode);
        let mut tx = Transaction {
            id,
            client,
            chaincode: request.chaincode.clone(),
            rwset,
            endorsements: Vec::new(),
        };

        // One endorsing peer per organization in the policy; the client
        // waits for the slowest response.
        let payload = tx.response_payload();
        let mut slowest_return = SimTime::ZERO;
        for org in self.config.policy.orgs() {
            let peer_index =
                (i / self.config.topology.clients) % self.config.topology.peers_per_org;
            let keypair = KeyPair::derive(Identity::new(format!("peer{peer_index}"), org.clone()));
            tx.endorsements.push(Endorsement {
                endorser: keypair.identity().clone(),
                signature: keypair.sign(&payload),
            });
            let ret = self.config.latency.peer_to_client.sample(&mut self.rng);
            slowest_return = slowest_return.max(ret);
        }

        if self.requests[i].corrupt_endorsement {
            // Failure injection: a flipped signature bit fails
            // verification on every peer.
            if let Some(endorsement) = tx.endorsements.first_mut() {
                endorsement.signature.0[0] ^= 0xff;
            }
        }

        self.index_by_id.insert(tx.id, i);
        self.endorsed[i] = Some(tx);
        let to_orderer = self.config.latency.client_to_orderer.sample(&mut self.rng);
        let arrival = now + exec_cost + slowest_return + to_orderer;
        self.queue.schedule(arrival, Event::OrdererReceive(i));
    }

    /// Applies an [`OrderingOutcome`]: schedules the batch timeout,
    /// records early aborts and broadcasts cut blocks (in the exact
    /// order the single-orderer path always used), then arms the
    /// backend's next internal wakeup (deduplicated per instant).
    fn apply_ordering(&mut self, now: SimTime, outcome: OrderingOutcome) {
        if let Some(timeout) = outcome.timeout {
            self.queue
                .schedule(timeout.at, Event::OrdererTimeout(timeout));
        }
        if !outcome.blocks.is_empty() {
            self.record_early_aborts(now);
            for (at, block) in outcome.blocks {
                debug_assert!(at <= now, "ordering backends cannot emit into the future");
                self.broadcast(at, block);
            }
        }
        if let Some(at) = outcome.wakeup {
            if self.armed_wakeups.insert(at) {
                self.queue.schedule(at, Event::OrderingWakeup);
            }
        }
    }

    /// Records transactions the reordering orderer dropped before block
    /// formation (Fabric++ early abort).
    fn record_early_aborts(&mut self, now: SimTime) {
        let aborted = self.ordering.take_early_aborted();
        for tx in aborted {
            if let Some(&idx) = self.index_by_id.get(&tx.id) {
                let code = fabriccrdt_ledger::block::ValidationCode::EarlyAborted;
                self.records[idx].committed_at = Some(now);
                self.records[idx].code = Some(code);
                self.maybe_retry(now, idx, code);
            }
        }
    }

    /// Client-side resubmission (§1): a conflicted transaction is
    /// re-executed, re-endorsed and re-ordered as a *new* transaction,
    /// keeping the original submission time so the final latency
    /// reflects the full retry cost. The retry fires after the client
    /// learns of the failure (peer → client notification hop).
    fn maybe_retry(
        &mut self,
        now: SimTime,
        idx: usize,
        code: fabriccrdt_ledger::block::ValidationCode,
    ) {
        use fabriccrdt_ledger::block::ValidationCode;
        let retryable = matches!(
            code,
            ValidationCode::MvccConflict | ValidationCode::EarlyAborted
        );
        if !retryable || self.attempts[idx] >= self.config.retry_budget() {
            return;
        }
        self.attempts[idx] += 1;
        self.resubmissions += 1;
        self.retry.retries += 1;
        // Pending again until the retry resolves.
        self.records[idx].committed_at = None;
        self.records[idx].code = None;
        let notify = self.config.latency.peer_to_client.sample(&mut self.rng);
        let resubmit = self.config.latency.client_to_peer.sample(&mut self.rng);
        // Seeded exponential backoff when a retry policy is configured.
        // The legacy `client_retries` path resubmits immediately and
        // draws nothing extra from the rng, so pre-policy runs stay
        // byte-identical.
        let backoff = match &self.config.retry {
            Some(policy) => policy.backoff_delay(self.attempts[idx], &mut self.rng),
            None => SimTime::ZERO,
        };
        self.queue
            .schedule(now + notify + backoff + resubmit, Event::Endorse(idx));
    }

    /// Broadcasts a cut block to the committing peer through the
    /// dissemination layer.
    fn broadcast(&mut self, now: SimTime, block: Block) {
        if let Some(log) = &mut self.block_log {
            log.push((now, block.clone()));
        }
        let at = self
            .delivery
            .deliver(now, &block, &self.config.latency, &mut self.rng);
        self.queue.schedule(at, Event::DeliverBlock(block));
    }

    /// Starts processing the next queued block if the peer is idle.
    /// Pre-validated (pipelined) blocks finish first; they always
    /// precede anything still in `pending_blocks`, so arrival order is
    /// preserved. The simulated cost derives from the work counters,
    /// which are value-identical under every pipeline — so commit
    /// times, and hence every simulation outcome, are too.
    fn maybe_start_processing(&mut self, now: SimTime) {
        if self.staged.is_some() {
            return;
        }
        let staged = if let Some(prep) = self.prepared.pop_front() {
            self.peer.finish_block(prep)
        } else if let Some(block) = self.pending_blocks.pop_front() {
            self.peer.process_block(block)
        } else {
            return;
        };
        let cost = self.config.latency.cost.block_cost(&staged.work);
        self.staged = Some(staged);
        self.queue.schedule(now + cost, Event::CommitDone);
    }
}
