//! Persistent validation worker pool.
//!
//! PR 4's parallel pipeline spawned fresh `std::thread::scope` workers
//! for every block, and `BENCH_commit_path.json` showed the spawn cost
//! eating the gains at small document sizes (0.80–0.85x at
//! `doc_readings: 4`). [`WorkerPool`] amortizes thread creation across
//! the whole run: threads are spawned once when a parallel pipeline is
//! constructed and parked on a condvar between batches.
//!
//! # Shape
//!
//! A batch is a closure run once per index `0..len`; workers pull
//! indices from a shared atomic cursor (same work-stealing-by-cursor
//! scheme the scoped version used). The *submitting* thread participates
//! in the pull loop, so a pool built for `workers` parallelism spawns
//! only `workers - 1` threads and total concurrency matches the old
//! scoped behaviour exactly.
//!
//! Everything is safely `'static`: the job is an
//! `Arc<dyn Fn(usize) + Send + Sync>` whose captures (transactions,
//! result slots, validator) are `Arc`ed by the caller — no lifetime
//! erasure, no unsafe code (the crate-level `forbid(unsafe_code)`
//! stands).
//!
//! # Panic policy
//!
//! A panic in the job on any thread is caught, the batch is drained,
//! and the submitter re-raises — its own payload if it panicked itself,
//! otherwise `"validation worker panicked"`, matching the scoped
//! pipeline's message. The pool stays usable afterwards.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of batch work: called once per index, concurrently.
pub type Job = Arc<dyn Fn(usize) + Send + Sync>;

/// One installed batch, cloned out by each worker.
#[derive(Clone)]
struct Batch {
    /// Monotone batch number; workers run each epoch exactly once.
    epoch: u64,
    job: Job,
    cursor: Arc<AtomicUsize>,
    len: usize,
}

#[derive(Default)]
struct PoolState {
    batch: Option<Batch>,
    epoch: u64,
    /// Spawned workers still running the current batch.
    active: usize,
    /// Whether any worker's job invocation panicked this batch.
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Signalled when a batch is installed or shutdown is requested.
    work_ready: Condvar,
    /// Signalled when the last active worker finishes a batch.
    work_done: Condvar,
}

/// A fixed-size pool of parked validation workers (see module docs).
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

/// Receipt for a batch installed with [`WorkerPool::submit`]. The
/// spawned workers are already chewing on it; redeem the ticket with
/// [`WorkerPool::wait`] to contribute the submitting thread and block
/// until the batch drains. Dropping the ticket without waiting is a
/// bug (the pool's batch slot stays occupied), so the type is
/// `#[must_use]`.
#[must_use = "a submitted batch must be waited on"]
pub struct BatchTicket {
    job: Job,
    cursor: Arc<AtomicUsize>,
    len: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.handles.len())
            .finish()
    }
}

/// Pulls indices from the cursor until the batch is exhausted.
fn run_indices(job: &Job, cursor: &AtomicUsize, len: usize) {
    loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= len {
            return;
        }
        job(i);
    }
}

fn worker_loop(shared: Arc<Shared>) {
    let mut last_epoch = 0u64;
    loop {
        let batch = {
            let mut state = shared.state.lock().expect("worker pool poisoned");
            loop {
                if state.shutdown {
                    return;
                }
                match &state.batch {
                    Some(batch) if batch.epoch != last_epoch => {
                        last_epoch = batch.epoch;
                        break batch.clone();
                    }
                    _ => state = shared.work_ready.wait(state).expect("worker pool poisoned"),
                }
            }
        };
        let panicked = catch_unwind(AssertUnwindSafe(|| {
            run_indices(&batch.job, &batch.cursor, batch.len);
        }))
        .is_err();
        // Drop our job clone *before* signalling completion so the
        // submitter's `Arc::try_unwrap` on the job captures succeeds.
        drop(batch);
        let mut state = shared.state.lock().expect("worker pool poisoned");
        if panicked {
            state.panicked = true;
        }
        state.active -= 1;
        if state.active == 0 {
            shared.work_done.notify_all();
        }
    }
}

impl WorkerPool {
    /// Spawns a pool providing `workers` total parallelism: `workers-1`
    /// parked threads plus the submitting thread itself.
    pub fn new(workers: usize) -> Self {
        let threads = workers.saturating_sub(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState::default()),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|n| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("validate-{n}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn validation worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Total parallelism (spawned threads + the submitter).
    pub fn workers(&self) -> usize {
        self.handles.len() + 1
    }

    /// Runs `job(i)` exactly once for every `i < len`, blocking until
    /// the whole batch is done. The caller's thread works too.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from `job` ("validation worker panicked" if it
    /// happened on a pool thread).
    pub fn run(&self, len: usize, job: Job) {
        if len == 0 {
            return;
        }
        let cursor = Arc::new(AtomicUsize::new(0));
        {
            let mut state = self.shared.state.lock().expect("worker pool poisoned");
            state.epoch += 1;
            state.batch = Some(Batch {
                epoch: state.epoch,
                job: job.clone(),
                cursor: cursor.clone(),
                len,
            });
            state.active = self.handles.len();
            state.panicked = false;
            self.shared.work_ready.notify_all();
        }
        let own_panic = catch_unwind(AssertUnwindSafe(|| run_indices(&job, &cursor, len))).err();
        let worker_panicked = {
            let mut state = self.shared.state.lock().expect("worker pool poisoned");
            while state.active > 0 {
                state = self
                    .shared
                    .work_done
                    .wait(state)
                    .expect("worker pool poisoned");
            }
            // Clear the batch so its job/cursor clones are gone and the
            // caller can `Arc::try_unwrap` the job captures.
            state.batch = None;
            state.panicked
        };
        drop(job);
        if let Some(payload) = own_panic {
            std::panic::resume_unwind(payload);
        }
        assert!(!worker_panicked, "validation worker panicked");
    }

    /// Installs a batch and returns immediately: the spawned workers
    /// start pulling indices while the submitting thread is free to do
    /// other work (the pipelined commit path runs the previous block's
    /// finalize here). Redeem the ticket with [`WorkerPool::wait`].
    ///
    /// At most one batch may be in flight; the runner serializes
    /// submissions (see [`crate::pipeline::PipelineRunner`]).
    pub fn submit(&self, len: usize, job: Job) -> BatchTicket {
        let cursor = Arc::new(AtomicUsize::new(0));
        if len > 0 {
            let mut state = self.shared.state.lock().expect("worker pool poisoned");
            debug_assert!(
                state.batch.is_none() && state.active == 0,
                "one batch in flight at a time"
            );
            state.epoch += 1;
            state.batch = Some(Batch {
                epoch: state.epoch,
                job: job.clone(),
                cursor: cursor.clone(),
                len,
            });
            state.active = self.handles.len();
            state.panicked = false;
            self.shared.work_ready.notify_all();
        }
        BatchTicket { job, cursor, len }
    }

    /// Joins a batch installed by [`WorkerPool::submit`]: the calling
    /// thread pulls remaining indices, then blocks until every worker
    /// has drained. Same panic policy as [`WorkerPool::run`].
    pub fn wait(&self, ticket: BatchTicket) {
        let BatchTicket { job, cursor, len } = ticket;
        if len == 0 {
            return;
        }
        let own_panic = catch_unwind(AssertUnwindSafe(|| run_indices(&job, &cursor, len))).err();
        let worker_panicked = {
            let mut state = self.shared.state.lock().expect("worker pool poisoned");
            while state.active > 0 {
                state = self
                    .shared
                    .work_done
                    .wait(state)
                    .expect("worker pool poisoned");
            }
            state.batch = None;
            state.panicked
        };
        drop(job);
        if let Some(payload) = own_panic {
            std::panic::resume_unwind(payload);
        }
        assert!(!worker_panicked, "validation worker panicked");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("worker pool poisoned");
            state.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_index_runs_exactly_once() {
        let pool = WorkerPool::new(4);
        for len in [0usize, 1, 2, 7, 100] {
            let counts: Arc<Vec<AtomicU64>> =
                Arc::new((0..len).map(|_| AtomicU64::new(0)).collect());
            let captured = counts.clone();
            pool.run(
                len,
                Arc::new(move |i| {
                    captured[i].fetch_add(1, Ordering::Relaxed);
                }),
            );
            for (i, count) in counts.iter().enumerate() {
                assert_eq!(count.load(Ordering::Relaxed), 1, "len={len}, index {i}");
            }
        }
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = WorkerPool::new(3);
        let total = Arc::new(AtomicU64::new(0));
        for _ in 0..50 {
            let captured = total.clone();
            pool.run(
                10,
                Arc::new(move |_| {
                    captured.fetch_add(1, Ordering::Relaxed);
                }),
            );
        }
        assert_eq!(total.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn single_worker_pool_runs_on_the_caller() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.workers(), 1);
        let caller = std::thread::current().id();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let captured = seen.clone();
        pool.run(
            5,
            Arc::new(move |i| {
                captured
                    .lock()
                    .unwrap()
                    .push((i, std::thread::current().id()));
            }),
        );
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 5);
        assert!(seen.iter().all(|(_, id)| *id == caller));
    }

    #[test]
    fn job_captures_are_released_after_run() {
        let pool = WorkerPool::new(4);
        let payload = Arc::new(vec![1u8, 2, 3]);
        let captured = payload.clone();
        pool.run(
            8,
            Arc::new(move |_| {
                let _ = captured.len();
            }),
        );
        // Both the pool's batch slot and the workers' clones are gone.
        assert_eq!(Arc::strong_count(&payload), 1);
        Arc::try_unwrap(payload).expect("sole owner after run");
    }

    #[test]
    fn panic_in_job_propagates_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(
                4,
                Arc::new(|i| {
                    if i == 2 {
                        panic!("boom at {i}");
                    }
                }),
            );
        }));
        assert!(result.is_err());
        // The pool keeps working after a panicked batch.
        let total = Arc::new(AtomicU64::new(0));
        let captured = total.clone();
        pool.run(
            3,
            Arc::new(move |_| {
                captured.fetch_add(1, Ordering::Relaxed);
            }),
        );
        assert_eq!(total.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn drop_joins_idle_workers() {
        let pool = WorkerPool::new(8);
        pool.run(2, Arc::new(|_| {}));
        drop(pool); // must not hang
    }

    #[test]
    fn submit_then_wait_matches_run() {
        let pool = WorkerPool::new(4);
        for len in [0usize, 1, 2, 7, 100] {
            let counts: Arc<Vec<AtomicU64>> =
                Arc::new((0..len).map(|_| AtomicU64::new(0)).collect());
            let captured = counts.clone();
            let ticket = pool.submit(
                len,
                Arc::new(move |i| {
                    captured[i].fetch_add(1, Ordering::Relaxed);
                }),
            );
            // The submitter overlaps other work here; the spawned
            // workers may already be (or have finished) pulling.
            pool.wait(ticket);
            for (i, count) in counts.iter().enumerate() {
                assert_eq!(count.load(Ordering::Relaxed), 1, "len={len}, index {i}");
            }
        }
        // The pool is immediately reusable for synchronous batches.
        let total = Arc::new(AtomicU64::new(0));
        let captured = total.clone();
        pool.run(
            5,
            Arc::new(move |_| {
                captured.fetch_add(1, Ordering::Relaxed);
            }),
        );
        assert_eq!(total.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn submitted_job_captures_are_released_after_wait() {
        let pool = WorkerPool::new(3);
        let payload = Arc::new(vec![9u8; 16]);
        let captured = payload.clone();
        let ticket = pool.submit(
            8,
            Arc::new(move |_| {
                let _ = captured.len();
            }),
        );
        pool.wait(ticket);
        assert_eq!(Arc::strong_count(&payload), 1);
    }

    #[test]
    fn panic_in_submitted_batch_propagates_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let ticket = pool.submit(
                4,
                Arc::new(|i| {
                    if i == 1 {
                        panic!("boom at {i}");
                    }
                }),
            );
            pool.wait(ticket);
        }));
        assert!(result.is_err());
        let total = Arc::new(AtomicU64::new(0));
        let captured = total.clone();
        pool.run(
            3,
            Arc::new(move |_| {
                captured.fetch_add(1, Ordering::Relaxed);
            }),
        );
        assert_eq!(total.load(Ordering::Relaxed), 3);
    }
}
