//! Network topology and pipeline configuration.

use fabriccrdt_sim::time::SimTime;

use crate::latency::LatencyConfig;
use crate::policy::EndorsementPolicy;

/// The logical network topology. The paper's evaluation (§7.2) uses
/// three organizations with two peers each, one orderer, one channel and
/// four Caliper clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// Number of organizations.
    pub orgs: usize,
    /// Peers per organization.
    pub peers_per_org: usize,
    /// Number of submitting clients.
    pub clients: usize,
}

impl Topology {
    /// The paper's topology: 3 orgs × 2 peers, 4 clients.
    pub fn paper() -> Self {
        Topology {
            orgs: 3,
            peers_per_org: 2,
            clients: 4,
        }
    }

    /// Organization names: `org1`, `org2`, …
    pub fn org_names(&self) -> Vec<String> {
        (1..=self.orgs).map(|i| format!("org{i}")).collect()
    }

    /// The default endorsement policy: one endorsement from every
    /// organization.
    pub fn default_policy(&self) -> EndorsementPolicy {
        EndorsementPolicy::all_of(self.org_names())
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::paper()
    }
}

/// Block-cutting parameters of the ordering service (§3: "the maximum
/// number of transactions, the maximum total size of transactions in a
/// block and a timeout period").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockCutConfig {
    /// Maximum transactions per block (the x-axis of Figure 3).
    pub max_tx_count: usize,
    /// Maximum bytes per block (128 MB in all the paper's experiments —
    /// effectively never binding).
    pub max_bytes: usize,
    /// Batch timeout (2 s in the paper's experiments).
    pub timeout: SimTime,
}

impl BlockCutConfig {
    /// The paper's configuration with the given block size.
    pub fn with_max_tx(max_tx_count: usize) -> Self {
        BlockCutConfig {
            max_tx_count,
            max_bytes: 128 * 1024 * 1024,
            timeout: SimTime::from_secs(2),
        }
    }
}

impl Default for BlockCutConfig {
    fn default() -> Self {
        // 25 tx/block: FabricCRDT's best configuration (§7.3).
        BlockCutConfig::with_max_tx(25)
    }
}

/// Full pipeline configuration for one simulation run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Network topology.
    pub topology: Topology,
    /// Endorsement policy applied to every transaction.
    pub policy: EndorsementPolicy,
    /// Orderer block cutting.
    pub block_cut: BlockCutConfig,
    /// Latency and cost calibration.
    pub latency: LatencyConfig,
    /// Root PRNG seed; every run with the same seed and inputs is
    /// bit-identical.
    pub seed: u64,
    /// Enable Fabric++-style dependency-graph reordering (and early
    /// abort) at the orderer — the baseline of the paper's §8.
    pub reorder: bool,
    /// How many times clients resubmit a transaction that failed MVCC
    /// validation (§1: "the only option for clients is to create a new
    /// transaction and resubmit"). 0 = no retries (the paper's
    /// experiments). Each retry re-executes, re-endorses and re-orders —
    /// the development-complexity and load cost FabricCRDT eliminates.
    pub client_retries: usize,
}

impl PipelineConfig {
    /// The paper's fixed setup with a given block size and seed.
    pub fn paper(max_tx_per_block: usize, seed: u64) -> Self {
        let topology = Topology::paper();
        let policy = topology.default_policy();
        PipelineConfig {
            topology,
            policy,
            block_cut: BlockCutConfig::with_max_tx(max_tx_per_block),
            latency: LatencyConfig::calibrated(),
            seed,
            reorder: false,
            client_retries: 0,
        }
    }

    /// Enables orderer-side reordering (the Fabric++ baseline).
    pub fn with_reordering(mut self) -> Self {
        self.reorder = true;
        self
    }

    /// Enables client-side resubmission of MVCC-failed transactions,
    /// up to `retries` attempts per transaction.
    pub fn with_client_retries(mut self, retries: usize) -> Self {
        self.client_retries = retries;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topology() {
        let t = Topology::paper();
        assert_eq!(t.orgs, 3);
        assert_eq!(t.peers_per_org, 2);
        assert_eq!(t.clients, 4);
        assert_eq!(t.org_names(), ["org1", "org2", "org3"]);
    }

    #[test]
    fn default_policy_requires_all_orgs() {
        let t = Topology::paper();
        let p = t.default_policy();
        assert!(p.is_satisfied_by(["org1", "org2", "org3"]));
        assert!(!p.is_satisfied_by(["org1", "org2"]));
    }

    #[test]
    fn block_cut_paper_defaults() {
        let b = BlockCutConfig::with_max_tx(400);
        assert_eq!(b.max_tx_count, 400);
        assert_eq!(b.max_bytes, 128 * 1024 * 1024);
        assert_eq!(b.timeout, SimTime::from_secs(2));
    }

    #[test]
    fn pipeline_config_paper() {
        let cfg = PipelineConfig::paper(25, 42);
        assert_eq!(cfg.block_cut.max_tx_count, 25);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.policy.required(), 3);
    }
}
