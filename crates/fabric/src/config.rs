//! Network topology and pipeline configuration.

use fabriccrdt_sim::latency::LatencyModel;
use fabriccrdt_sim::time::SimTime;

use crate::channel::ChannelId;
use crate::latency::LatencyConfig;
use crate::pipeline::ValidationPipeline;
use crate::policy::EndorsementPolicy;

/// The logical network topology. The paper's evaluation (§7.2) uses
/// three organizations with two peers each, one orderer, one channel and
/// four Caliper clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// Number of organizations.
    pub orgs: usize,
    /// Peers per organization.
    pub peers_per_org: usize,
    /// Number of submitting clients.
    pub clients: usize,
}

impl Topology {
    /// The paper's topology: 3 orgs × 2 peers, 4 clients.
    pub fn paper() -> Self {
        Topology {
            orgs: 3,
            peers_per_org: 2,
            clients: 4,
        }
    }

    /// Organization names: `org1`, `org2`, …
    pub fn org_names(&self) -> Vec<String> {
        (1..=self.orgs).map(|i| format!("org{i}")).collect()
    }

    /// Total peers across all organizations — the range of the global
    /// peer numbering (`org * peers_per_org + peer`).
    pub fn total_peers(&self) -> usize {
        self.orgs * self.peers_per_org
    }

    /// The default endorsement policy: one endorsement from every
    /// organization.
    pub fn default_policy(&self) -> EndorsementPolicy {
        EndorsementPolicy::all_of(self.org_names())
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::paper()
    }
}

/// Block-cutting parameters of the ordering service (§3: "the maximum
/// number of transactions, the maximum total size of transactions in a
/// block and a timeout period").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockCutConfig {
    /// Maximum transactions per block (the x-axis of Figure 3).
    pub max_tx_count: usize,
    /// Maximum bytes per block (128 MB in all the paper's experiments —
    /// effectively never binding).
    pub max_bytes: usize,
    /// Batch timeout (2 s in the paper's experiments).
    pub timeout: SimTime,
}

impl BlockCutConfig {
    /// The paper's configuration with the given block size.
    pub fn with_max_tx(max_tx_count: usize) -> Self {
        BlockCutConfig {
            max_tx_count,
            max_bytes: 128 * 1024 * 1024,
            timeout: SimTime::from_secs(2),
        }
    }
}

impl Default for BlockCutConfig {
    fn default() -> Self {
        // 25 tx/block: FabricCRDT's best configuration (§7.3).
        BlockCutConfig::with_max_tx(25)
    }
}

/// Parameters of the gossip block-dissemination layer (Fabric §4.4:
/// per-org leader peers pull blocks from the ordering service and
/// forward them; followers receive them via push gossip with periodic
/// pull-based anti-entropy for state transfer).
///
/// This is plain data so that a whole run — including the gossip
/// topology and every fault — is reproducible from the seed in
/// [`PipelineConfig`]. The `fabriccrdt-gossip` crate interprets it.
#[derive(Debug, Clone, PartialEq)]
pub struct GossipConfig {
    /// How many randomly chosen peers a peer forwards a freshly seen
    /// block to (Fabric's `PropagatePeerNum`, default 3).
    pub fanout: usize,
    /// Peer-to-peer gossip hop latency.
    pub link: LatencyModel,
    /// Period of the pull-based anti-entropy (state-transfer) loop that
    /// lets lagging peers request blocks they missed.
    pub anti_entropy_interval: SimTime,
    /// Flattened index of the peer whose block arrivals drive the
    /// committing-peer pipeline when gossip is plugged into
    /// [`crate::simulation::Simulation`] (peer `o * peers_per_org + p`
    /// is peer `p` of org `o`; peer 0 of each org is its leader).
    pub observed_peer: usize,
}

impl GossipConfig {
    /// Defaults matching the paper topology: fanout 3, 1 ms links,
    /// 500 ms anti-entropy, observing the last follower peer (the
    /// farthest from the orderer, so commit latency includes full
    /// dissemination).
    pub fn calibrated(topology: &Topology) -> Self {
        GossipConfig {
            fanout: 3,
            link: LatencyModel::Normal {
                mean_secs: 0.0010,
                std_secs: 0.0002,
                min: SimTime::from_micros(200),
            },
            anti_entropy_interval: SimTime::from_millis(500),
            observed_peer: topology.orgs * topology.peers_per_org - 1,
        }
    }
}

/// Parameters of the Raft-replicated ordering service (Fabric's
/// consensus became a pluggable module and migrated to Raft; the
/// paper's Kafka/ZooKeeper deployment is the same "crash-fault-tolerant
/// total order" role). Interpreted by the `fabriccrdt-ordering` crate.
///
/// Like [`GossipConfig`], this is plain data: the whole cluster —
/// election timeouts, link delays, every fault coin-flip — is
/// reproducible from the run seed in [`PipelineConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct RaftConfig {
    /// Number of ordering nodes (consenters). Tolerates
    /// `(nodes - 1) / 2` simultaneous crashes.
    pub nodes: usize,
    /// Lower bound of the randomized election timeout.
    pub election_timeout_min: SimTime,
    /// Upper bound of the randomized election timeout (exclusive with
    /// `min == max` allowed, then the timeout is fixed).
    pub election_timeout_max: SimTime,
    /// Leader heartbeat (empty `AppendEntries`) period. Must be well
    /// below the election timeout or followers keep starting elections.
    pub heartbeat_interval: SimTime,
    /// Orderer-to-orderer link latency for Raft messages.
    pub link: LatencyModel,
    /// How often clients re-attempt delivery of transactions that are
    /// not yet held by a reachable leader (leaderless windows, batches
    /// lost to a deposed leader).
    pub retry_interval: SimTime,
    /// `Some(i)`: the cluster boots with node `i` already leader of
    /// term 1 — a Fabric channel elects its leader at channel creation,
    /// long before traffic. `None` models a cold start (first election
    /// races from term 0).
    pub preelected_leader: Option<usize>,
    /// Fault schedule over *ordering-node* indices (`CrashSpec::peer`
    /// and `PartitionSpec::minority` name Raft nodes here); link faults
    /// apply to Raft messages. Independent of the gossip-layer
    /// [`PipelineConfig::faults`].
    pub faults: FaultConfig,
}

impl RaftConfig {
    /// Calibrated defaults: 150–300 ms election timeouts, 50 ms
    /// heartbeats, ~1 ms links (the gossip calibration), 100 ms client
    /// retry, node 0 pre-elected, no faults.
    pub fn calibrated(nodes: usize) -> Self {
        RaftConfig {
            nodes,
            election_timeout_min: SimTime::from_millis(150),
            election_timeout_max: SimTime::from_millis(300),
            heartbeat_interval: SimTime::from_millis(50),
            link: LatencyModel::Normal {
                mean_secs: 0.0010,
                std_secs: 0.0002,
                min: SimTime::from_micros(200),
            },
            retry_interval: SimTime::from_millis(100),
            preelected_leader: Some(0),
            faults: FaultConfig::none(),
        }
    }
}

/// Tuning of the adaptive conflict-aware ordering policy
/// ([`OrderingPolicy::Adaptive`]). Interpreted by the orderer's
/// [`crate::conflict::ConflictTracker`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Per-round EWMA decay of the conflict tracker's key scores
    /// (must be in `(0, 1)`; closer to 1 = longer memory).
    pub decay: f64,
    /// A key is *hot* once its decayed conflict score reaches this
    /// (scores are in conflicts-per-block units).
    pub hot_key_threshold: f64,
    /// Dependency-graph reordering engages for a batch once the
    /// fraction of its transactions touching a hot key reaches this;
    /// below it the batch is cut FIFO and the Tarjan/Kahn pass is
    /// skipped entirely (the cold-traffic hot-path win).
    pub density_threshold: f64,
    /// `Some(t)`: on FIFO-cut batches, early-abort every
    /// read-modify-write transaction beyond the first on any key whose
    /// conflict score is at least `t` (predicted doomed by history —
    /// they would fail MVCC or be cycle-aborted anyway). `None`
    /// disables predictive aborts.
    pub predict_abort_threshold: Option<f64>,
}

impl AdaptiveConfig {
    /// Calibrated defaults: decay 0.8 (~5-block memory), hot at half a
    /// conflict/block (uniform-but-contended traffic — a few collisions
    /// per key per block — must keep the gate open, not just single-key
    /// hotspots), reorder at 10% hot transactions, no predictive
    /// aborts.
    pub fn calibrated() -> Self {
        AdaptiveConfig {
            decay: 0.8,
            hot_key_threshold: 0.5,
            density_threshold: 0.1,
            predict_abort_threshold: None,
        }
    }
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig::calibrated()
    }
}

/// How the ordering service treats each pending batch at block cut.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum OrderingPolicy {
    /// Arrival order, untouched — the seed pipeline.
    #[default]
    Fifo,
    /// Fabric++-style dependency-graph reordering with cycle early
    /// aborts on every batch (see [`crate::reorder`]) — equivalent to
    /// the legacy [`PipelineConfig::reorder`] flag.
    Reorder,
    /// Conflict-aware routing: reorder only batches whose measured
    /// conflict density crosses the configured threshold; cut cold
    /// batches FIFO without paying the graph cost. Driven by finalize
    /// feedback through the [`crate::conflict::ConflictTracker`].
    Adaptive(AdaptiveConfig),
}

impl OrderingPolicy {
    /// The policy the legacy `reorder: bool` flag denotes.
    pub fn from_legacy(reorder: bool) -> Self {
        if reorder {
            OrderingPolicy::Reorder
        } else {
            OrderingPolicy::Fifo
        }
    }

    /// Whether this policy ever consults finalize feedback.
    pub fn is_adaptive(&self) -> bool {
        matches!(self, OrderingPolicy::Adaptive(_))
    }
}

/// Client-side abort-and-retry tuning: how failed (MVCC-conflicted or
/// early-aborted) transactions are re-submitted.
///
/// The legacy [`PipelineConfig::client_retries`] knob retries
/// immediately after the failure notification; this policy adds the
/// deterministic seeded exponential backoff real deployments use, so
/// retry storms on a hot key spread out instead of re-colliding in the
/// next block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum resubmissions per transaction (the retry budget).
    pub budget: usize,
    /// Base backoff before the first retry; doubles per attempt
    /// (capped at `base << 6`).
    pub backoff_base: SimTime,
    /// Uniform jitter fraction: each backoff is scaled by a factor
    /// drawn deterministically from `[1, 1 + jitter)` off the run
    /// seed's PRNG stream.
    pub jitter: f64,
}

impl RetryPolicy {
    /// Calibrated defaults for a given budget: 50 ms base, 50% jitter.
    pub fn calibrated(budget: usize) -> Self {
        RetryPolicy {
            budget,
            backoff_base: SimTime::from_millis(50),
            jitter: 0.5,
        }
    }

    /// The deterministic backoff before retry attempt `attempt`
    /// (1-based), drawing the jitter factor from `rng`.
    pub fn backoff_delay(&self, attempt: usize, rng: &mut fabriccrdt_sim::rng::SimRng) -> SimTime {
        let exp = (attempt.saturating_sub(1)).min(6) as u32;
        let base = self.backoff_base.as_micros().saturating_mul(1u64 << exp);
        let factor = if self.jitter > 0.0 {
            rng.gen_range_f64(1.0, 1.0 + self.jitter)
        } else {
            1.0
        };
        SimTime::from_micros((base as f64 * factor) as u64)
    }
}

/// Per-link message faults applied to every gossip hop.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFaults {
    /// Probability a message is dropped in transit.
    pub drop: f64,
    /// Probability a message is duplicated (the copy arrives after an
    /// independently sampled delay — gossip must dedup it).
    pub duplicate: f64,
    /// Extra per-message delay added on top of the link latency.
    pub extra_delay: LatencyModel,
}

impl LinkFaults {
    /// A loss-free, duplication-free, no-extra-delay link.
    pub fn none() -> Self {
        LinkFaults {
            drop: 0.0,
            duplicate: 0.0,
            extra_delay: LatencyModel::zero(),
        }
    }
}

/// A scheduled peer crash and restart. While down the peer loses its
/// in-flight messages and receive buffer; its committed ledger persists
/// (Fabric peers keep the ledger on disk) and is restored on restart,
/// after which anti-entropy catches the peer up.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashSpec {
    /// Flattened peer index.
    pub peer: usize,
    /// Crash time.
    pub at: SimTime,
    /// Restart time (must be ≥ `at`).
    pub restart_at: SimTime,
}

/// A network partition: during `[at, heal_at)` the `minority` peers can
/// talk only among themselves; everyone else — including the ordering
/// service — is unreachable from them.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSpec {
    /// Partition start.
    pub at: SimTime,
    /// Heal time.
    pub heal_at: SimTime,
    /// Flattened indices of the isolated peers.
    pub minority: Vec<usize>,
}

/// How a byzantine relay mangles the block it forwards. The first
/// three modes leave the original Merkle data hash in place, so the
/// forged copy is *internally* inconsistent and detected by the data
/// hash alone; the last two re-seal the forged payload, so the copy is
/// internally consistent and only detectable against the canonical
/// block digest at the same height (equivocation evidence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TamperMode {
    /// Flip one byte of the first transaction's payload without
    /// recomputing the data hash.
    FlipPayloadByte,
    /// Append a duplicate copy of the first transaction without
    /// recomputing the data hash.
    DuplicateTx,
    /// Reverse the transaction order without recomputing the data
    /// hash.
    ReorderTxs,
    /// Re-seal the block over a forged previous-block hash — an
    /// attempt to splice the victim onto a fork.
    ForgeTipHash,
    /// Re-seal the block over an altered transaction set — the
    /// equivocating orderer emitting divergent-but-well-formed blocks
    /// at one height to different victims.
    EquivocateValue,
}

/// One scheduled byzantine injection: when the canonical block at
/// `height` is published, a forged variant is also delivered to each
/// victim. Plain data, like [`FaultConfig`] — the whole attack is
/// reproducible from the run configuration alone and draws nothing
/// from the run's PRNG streams.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackSpec {
    /// Block height (1-based block number) the attack targets. Heights
    /// never published are silently inert.
    pub height: u64,
    /// How the forged variant differs from the canonical block.
    pub mode: TamperMode,
    /// Flattened peer indices the forged variant is delivered to.
    pub victims: Vec<usize>,
    /// The compromised relay the forgery claims to come from; `None`
    /// means it masquerades as an ordering-service delivery. A named
    /// relay gets quarantined on detection.
    pub via: Option<usize>,
    /// Extra delay past the canonical orderer→leader hop before the
    /// forged copies land.
    pub delay: SimTime,
}

/// A run's byzantine-adversary schedule, interpreted by the gossip
/// layer's ingress screen. Like [`FaultConfig`], this is plain data so
/// an adversarial run is reproducible from its configuration; enabling
/// it changes nothing about honest message flow (the screen only drops
/// blocks that fail integrity or digest checks).
#[derive(Debug, Clone, PartialEq)]
pub struct AdversaryConfig {
    /// Scheduled injections.
    pub attacks: Vec<AttackSpec>,
    /// Quarantine probation: a quarantined relay is released after
    /// serving this many *clean* gossip rounds — one round per block
    /// the lane publishes — in which it triggered no fresh detection
    /// (any new detection restarts the count). `0` means quarantine is
    /// permanent. Deterministic — the release decision reads only
    /// round counters, never a PRNG — so enabling it draws nothing
    /// extra from the run's streams.
    ///
    /// The default, [`AdversaryConfig::DEFAULT_PROBATION_ROUNDS`],
    /// keeps an honest-but-once-spoofed relay from being silently cut
    /// out of dissemination forever (its pushes would otherwise count
    /// as `quarantine_drops` for the rest of the run).
    pub probation_rounds: u64,
}

impl AdversaryConfig {
    /// Default clean gossip rounds (published blocks) before a
    /// quarantined relay is released on probation.
    pub const DEFAULT_PROBATION_ROUNDS: u64 = 4;

    /// No adversary at all.
    pub fn none() -> Self {
        AdversaryConfig {
            attacks: Vec::new(),
            probation_rounds: Self::DEFAULT_PROBATION_ROUNDS,
        }
    }

    /// Whether the schedule injects anything.
    pub fn is_quiescent(&self) -> bool {
        self.attacks.is_empty()
    }
}

impl Default for AdversaryConfig {
    fn default() -> Self {
        AdversaryConfig::none()
    }
}

/// The full fault-injection surface of one run. All faults are sampled
/// or scheduled deterministically from the run's seed.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Message-level faults on every gossip link.
    pub link: LinkFaults,
    /// Scheduled crashes/restarts.
    pub crashes: Vec<CrashSpec>,
    /// Scheduled partitions.
    pub partitions: Vec<PartitionSpec>,
}

impl FaultConfig {
    /// No faults at all.
    pub fn none() -> Self {
        FaultConfig {
            link: LinkFaults::none(),
            crashes: Vec::new(),
            partitions: Vec::new(),
        }
    }

    /// Whether this configuration injects any fault.
    pub fn is_quiescent(&self) -> bool {
        self.link.drop == 0.0
            && self.link.duplicate == 0.0
            && self.link.extra_delay == LatencyModel::zero()
            && self.crashes.is_empty()
            && self.partitions.is_empty()
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

/// Full pipeline configuration for one simulation run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Network topology.
    pub topology: Topology,
    /// Endorsement policy applied to every transaction.
    pub policy: EndorsementPolicy,
    /// Orderer block cutting.
    pub block_cut: BlockCutConfig,
    /// Latency and cost calibration.
    pub latency: LatencyConfig,
    /// Root PRNG seed; every run with the same seed and inputs is
    /// bit-identical.
    pub seed: u64,
    /// Enable Fabric++-style dependency-graph reordering (and early
    /// abort) at the orderer — the baseline of the paper's §8.
    ///
    /// Legacy flag, equivalent to `ordering_policy:
    /// OrderingPolicy::Reorder`; see
    /// [`PipelineConfig::effective_ordering_policy`] for how the two
    /// compose.
    pub reorder: bool,
    /// How the orderer treats each batch at block cut. The default,
    /// [`OrderingPolicy::Fifo`], is byte-for-byte the seed pipeline;
    /// the legacy [`PipelineConfig::reorder`] flag maps onto
    /// [`OrderingPolicy::Reorder`].
    pub ordering_policy: OrderingPolicy,
    /// Client-side abort-and-retry policy with deterministic seeded
    /// backoff. `None` (the default everywhere) keeps the legacy
    /// immediate-retry behaviour of
    /// [`PipelineConfig::client_retries`], byte-for-byte.
    pub retry: Option<RetryPolicy>,
    /// How many times clients resubmit a transaction that failed MVCC
    /// validation (§1: "the only option for clients is to create a new
    /// transaction and resubmit"). 0 = no retries (the paper's
    /// experiments). Each retry re-executes, re-endorses and re-orders —
    /// the development-complexity and load cost FabricCRDT eliminates.
    pub client_retries: usize,
    /// Gossip dissemination parameters. `None` (the default everywhere)
    /// keeps the ideal FIFO block delivery all the paper figures use;
    /// `Some` asks gossip-aware constructors (the `fabriccrdt-gossip`
    /// crate) to route blocks through the gossip layer instead.
    pub gossip: Option<GossipConfig>,
    /// Fault injection applied by the gossip layer. Ignored under ideal
    /// FIFO delivery.
    pub faults: FaultConfig,
    /// Raft ordering-service parameters. `None` (the default
    /// everywhere) keeps the single in-process orderer all the paper
    /// figures use; `Some` asks Raft-aware constructors (the
    /// `fabriccrdt-ordering` crate) to replicate the orderer across a
    /// consensus cluster instead.
    pub ordering: Option<RaftConfig>,
    /// Durable-storage configuration for gossip-layer peers. `None`
    /// (the default everywhere) keeps ledgers purely in memory with no
    /// snapshots — byte-for-byte the seed behaviour; `Some` attaches a
    /// [`crate::storage::DurableLedger`] per peer (in-memory or
    /// append-only-file backend), takes periodic snapshots, optionally
    /// GCs history below the cluster-acknowledged frontier, and lets
    /// anti-entropy ship snapshots to far-behind peers.
    pub storage: Option<crate::storage::StorageConfig>,
    /// Byzantine-adversary schedule, applied by the gossip layer's
    /// ingress screen. `None` (the default everywhere) disables both
    /// injection and screening — honest runs are byte-for-byte
    /// unaffected. Ignored under ideal FIFO delivery, like
    /// [`PipelineConfig::faults`].
    pub adversary: Option<AdversaryConfig>,
    /// Which channel this pipeline runs on. [`ChannelId::DEFAULT`] for
    /// every single-channel run; multi-channel deployments
    /// ([`crate::channel::MultiChannelConfig`]) derive one config per
    /// channel with this set to the channel's id, which flows into the
    /// peer, the run metrics and the per-channel ledger file names.
    pub channel: ChannelId,
    /// Committing-peer validation pipeline. The default,
    /// [`ValidationPipeline::Sequential`], is byte-for-byte the seed
    /// commit path; `Parallel { workers }` fans endorsement/signature
    /// checks per transaction and MVCC/merge finalize per conflict
    /// chain over a persistent worker pool with order-preserving joins
    /// — value-identical results, less wall-clock time. Simulated time
    /// is unaffected either way (costs come from work counters, which
    /// are identical under every pipeline).
    pub validation: ValidationPipeline,
}

impl PipelineConfig {
    /// The paper's fixed setup with a given block size and seed.
    pub fn paper(max_tx_per_block: usize, seed: u64) -> Self {
        let topology = Topology::paper();
        let policy = topology.default_policy();
        PipelineConfig {
            topology,
            policy,
            block_cut: BlockCutConfig::with_max_tx(max_tx_per_block),
            latency: LatencyConfig::calibrated(),
            seed,
            reorder: false,
            ordering_policy: OrderingPolicy::Fifo,
            retry: None,
            client_retries: 0,
            gossip: None,
            faults: FaultConfig::none(),
            ordering: None,
            storage: None,
            adversary: None,
            channel: ChannelId::DEFAULT,
            validation: ValidationPipeline::Sequential,
        }
    }

    /// Assigns this pipeline to a channel (builder style); see
    /// [`PipelineConfig::channel`].
    pub fn with_channel(mut self, channel: ChannelId) -> Self {
        self.channel = channel;
        self
    }

    /// Attaches durable peer storage (takes effect only with gossip
    /// delivery; see [`PipelineConfig::storage`]).
    pub fn with_storage(mut self, storage: crate::storage::StorageConfig) -> Self {
        self.storage = Some(storage);
        self
    }

    /// Fans committing-peer validation out over a persistent pool of
    /// `workers` threads (clamped to at least 1): pre-validation per
    /// transaction, finalize per conflict chain. Value-identical to the
    /// default sequential pipeline — see `crates/fabric/src/pipeline.rs`
    /// for the determinism argument.
    pub fn with_parallel_validation(mut self, workers: usize) -> Self {
        self.validation = ValidationPipeline::parallel(workers);
        self
    }

    /// Everything [`PipelineConfig::with_parallel_validation`] does,
    /// plus cross-block overlap: block N+1's pure pre-validation runs
    /// on the pool while block N's finalize commits, with lockless
    /// snapshot reads and an authoritative MVCC recheck at finalize.
    /// Value-identical to sequential; only host wall-clock changes.
    pub fn with_pipelined_validation(mut self, workers: usize) -> Self {
        self.validation = ValidationPipeline::pipelined(workers);
        self
    }

    /// Selects an explicit validation pipeline.
    pub fn with_validation(mut self, validation: ValidationPipeline) -> Self {
        self.validation = validation;
        self
    }

    /// Routes block dissemination through the gossip layer with the
    /// calibrated defaults for this topology.
    pub fn with_gossip(mut self) -> Self {
        self.gossip = Some(GossipConfig::calibrated(&self.topology));
        self
    }

    /// Routes block dissemination through the gossip layer with explicit
    /// parameters.
    pub fn with_gossip_config(mut self, gossip: GossipConfig) -> Self {
        self.gossip = Some(gossip);
        self
    }

    /// Sets the fault-injection schedule (takes effect only with
    /// gossip delivery).
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Replicates the ordering service across a Raft cluster with the
    /// calibrated defaults (5 nodes, node 0 pre-elected).
    pub fn with_raft_ordering(mut self) -> Self {
        self.ordering = Some(RaftConfig::calibrated(5));
        self
    }

    /// Replicates the ordering service across a Raft cluster with
    /// explicit parameters.
    pub fn with_raft_config(mut self, raft: RaftConfig) -> Self {
        self.ordering = Some(raft);
        self
    }

    /// Installs a byzantine-adversary schedule (takes effect only with
    /// gossip delivery; see [`PipelineConfig::adversary`]).
    pub fn with_adversary(mut self, adversary: AdversaryConfig) -> Self {
        self.adversary = Some(adversary);
        self
    }

    /// Enables orderer-side reordering (the Fabric++ baseline).
    pub fn with_reordering(mut self) -> Self {
        self.reorder = true;
        self
    }

    /// Enables client-side resubmission of MVCC-failed transactions,
    /// up to `retries` attempts per transaction.
    pub fn with_client_retries(mut self, retries: usize) -> Self {
        self.client_retries = retries;
        self
    }

    /// Selects an explicit ordering policy (see [`OrderingPolicy`]).
    pub fn with_ordering_policy(mut self, policy: OrderingPolicy) -> Self {
        self.ordering_policy = policy;
        self
    }

    /// Enables conflict-aware adaptive ordering with the calibrated
    /// thresholds ([`AdaptiveConfig::calibrated`]).
    pub fn with_adaptive_ordering(mut self) -> Self {
        self.ordering_policy = OrderingPolicy::Adaptive(AdaptiveConfig::calibrated());
        self
    }

    /// Enables client-side abort-and-retry with deterministic seeded
    /// backoff. Overrides [`PipelineConfig::client_retries`] as the
    /// retry budget.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    /// The ordering policy this configuration denotes: the explicit
    /// [`PipelineConfig::ordering_policy`] when set, otherwise the
    /// legacy [`PipelineConfig::reorder`] flag mapped onto
    /// [`OrderingPolicy::Reorder`]/[`OrderingPolicy::Fifo`]. An
    /// explicit non-FIFO policy wins over the flag.
    pub fn effective_ordering_policy(&self) -> OrderingPolicy {
        match self.ordering_policy {
            OrderingPolicy::Fifo => OrderingPolicy::from_legacy(self.reorder),
            policy => policy,
        }
    }

    /// The client retry budget: the [`RetryPolicy`] budget when one is
    /// configured, otherwise the legacy
    /// [`PipelineConfig::client_retries`].
    pub fn retry_budget(&self) -> usize {
        self.retry.map_or(self.client_retries, |r| r.budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topology() {
        let t = Topology::paper();
        assert_eq!(t.orgs, 3);
        assert_eq!(t.peers_per_org, 2);
        assert_eq!(t.clients, 4);
        assert_eq!(t.org_names(), ["org1", "org2", "org3"]);
    }

    #[test]
    fn default_policy_requires_all_orgs() {
        let t = Topology::paper();
        let p = t.default_policy();
        assert!(p.is_satisfied_by(["org1", "org2", "org3"]));
        assert!(!p.is_satisfied_by(["org1", "org2"]));
    }

    #[test]
    fn block_cut_paper_defaults() {
        let b = BlockCutConfig::with_max_tx(400);
        assert_eq!(b.max_tx_count, 400);
        assert_eq!(b.max_bytes, 128 * 1024 * 1024);
        assert_eq!(b.timeout, SimTime::from_secs(2));
    }

    #[test]
    fn pipeline_config_paper() {
        let cfg = PipelineConfig::paper(25, 42);
        assert_eq!(cfg.block_cut.max_tx_count, 25);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.policy.required(), 3);
        assert!(cfg.gossip.is_none());
        assert!(cfg.faults.is_quiescent());
    }

    #[test]
    fn gossip_defaults_observe_last_peer() {
        let cfg = PipelineConfig::paper(25, 1).with_gossip();
        let gossip = cfg.gossip.as_ref().unwrap();
        assert_eq!(gossip.fanout, 3);
        assert_eq!(gossip.observed_peer, 5); // 3 orgs × 2 peers − 1
    }

    #[test]
    fn raft_config_defaults() {
        let cfg = PipelineConfig::paper(25, 1);
        assert!(cfg.ordering.is_none());
        let cfg = cfg.with_raft_ordering();
        let raft = cfg.ordering.as_ref().unwrap();
        assert_eq!(raft.nodes, 5);
        assert_eq!(raft.preelected_leader, Some(0));
        assert!(raft.heartbeat_interval < raft.election_timeout_min);
        assert!(raft.election_timeout_min <= raft.election_timeout_max);
        assert!(raft.faults.is_quiescent());
    }

    #[test]
    fn raft_config_explicit_override() {
        let raft = RaftConfig {
            nodes: 3,
            preelected_leader: None,
            ..RaftConfig::calibrated(5)
        };
        let cfg = PipelineConfig::paper(25, 1).with_raft_config(raft.clone());
        assert_eq!(cfg.ordering, Some(raft));
    }

    #[test]
    fn adversary_schedule_is_plain_data() {
        assert!(AdversaryConfig::none().is_quiescent());
        assert!(PipelineConfig::paper(25, 1).adversary.is_none());
        let cfg = PipelineConfig::paper(25, 1).with_adversary(AdversaryConfig {
            attacks: vec![AttackSpec {
                height: 2,
                mode: TamperMode::EquivocateValue,
                victims: vec![4, 5],
                via: Some(3),
                delay: SimTime::from_millis(5),
            }],
            ..AdversaryConfig::none()
        });
        let adversary = cfg.adversary.as_ref().unwrap();
        assert!(!adversary.is_quiescent());
        assert_eq!(adversary.attacks[0].victims, [4, 5]);
        assert_eq!(
            adversary.probation_rounds,
            AdversaryConfig::DEFAULT_PROBATION_ROUNDS
        );
    }

    #[test]
    fn ordering_policy_resolution() {
        let cfg = PipelineConfig::paper(25, 1);
        assert_eq!(cfg.effective_ordering_policy(), OrderingPolicy::Fifo);
        // Legacy flag maps onto the Reorder policy.
        let legacy = PipelineConfig::paper(25, 1).with_reordering();
        assert_eq!(legacy.effective_ordering_policy(), OrderingPolicy::Reorder);
        // Explicit policy wins over the flag.
        let adaptive = PipelineConfig::paper(25, 1)
            .with_reordering()
            .with_adaptive_ordering();
        assert!(adaptive.effective_ordering_policy().is_adaptive());
        // Explicit FIFO alongside the flag still honours the flag (an
        // unset enum must not silently disable a requested reorder).
        let both = PipelineConfig::paper(25, 1)
            .with_ordering_policy(OrderingPolicy::Fifo)
            .with_reordering();
        assert_eq!(both.effective_ordering_policy(), OrderingPolicy::Reorder);
    }

    #[test]
    fn retry_budget_resolution() {
        let cfg = PipelineConfig::paper(25, 1).with_client_retries(3);
        assert_eq!(cfg.retry_budget(), 3);
        assert!(cfg.retry.is_none());
        let cfg = cfg.with_retry_policy(RetryPolicy::calibrated(5));
        assert_eq!(cfg.retry_budget(), 5);
    }

    #[test]
    fn retry_backoff_is_exponential_and_deterministic() {
        use fabriccrdt_sim::rng::SimRng;
        let policy = RetryPolicy {
            budget: 8,
            backoff_base: SimTime::from_millis(10),
            jitter: 0.0,
        };
        let mut rng = SimRng::seed_from(7);
        assert_eq!(policy.backoff_delay(1, &mut rng), SimTime::from_millis(10));
        assert_eq!(policy.backoff_delay(2, &mut rng), SimTime::from_millis(20));
        assert_eq!(policy.backoff_delay(3, &mut rng), SimTime::from_millis(40));
        // The exponent caps at 6 doublings.
        assert_eq!(
            policy.backoff_delay(50, &mut rng),
            SimTime::from_millis(640)
        );
        // With jitter, two identically seeded streams agree.
        let jittered = RetryPolicy::calibrated(2);
        let mut a = SimRng::seed_from(9);
        let mut b = SimRng::seed_from(9);
        let da = jittered.backoff_delay(1, &mut a);
        assert_eq!(da, jittered.backoff_delay(1, &mut b));
        assert!(da >= jittered.backoff_base);
    }

    #[test]
    fn fault_quiescence_detects_each_knob() {
        assert!(FaultConfig::none().is_quiescent());
        let drops = FaultConfig {
            link: LinkFaults {
                drop: 0.1,
                ..LinkFaults::none()
            },
            ..FaultConfig::none()
        };
        assert!(!drops.is_quiescent());
        let crashes = FaultConfig {
            crashes: vec![CrashSpec {
                peer: 1,
                at: SimTime::from_secs(1),
                restart_at: SimTime::from_secs(2),
            }],
            ..FaultConfig::none()
        };
        assert!(!crashes.is_quiescent());
        let split = FaultConfig {
            partitions: vec![PartitionSpec {
                at: SimTime::from_secs(1),
                heal_at: SimTime::from_secs(2),
                minority: vec![4, 5],
            }],
            ..FaultConfig::none()
        };
        assert!(!split.is_quiescent());
    }
}
