//! The work-to-simulated-time cost model.
//!
//! Validation and commit *compute* time is charged from deterministic
//! work counters produced by actually running the real algorithms (MVCC
//! checks, JSON-CRDT merges), so experiments are byte-for-byte
//! reproducible across machines (DESIGN.md §1, "Time model").
//!
//! The CRDT merge terms deserve a note. Merging transaction *i* of a
//! block into a key's JSON CRDT costs a linear term (per work unit:
//! operations generated + nodes visited) plus a term proportional to
//! `units × ops_already_in_document`. The second term models the
//! apply-cost growth of operation-log JSON-CRDT implementations (the
//! paper's prototype builds on the rdoc Go library, which re-traverses
//! the operation history): the more transactions a block merges into one
//! document, the more expensive each further merge becomes. This is the
//! mechanism behind Figure 3's result that FabricCRDT favours *small*
//! blocks — with 25-tx blocks the quadratic term is negligible, with
//! 1000-tx blocks it dominates.

use fabriccrdt_sim::time::SimTime;

use crate::chaincode::ExecWork;

/// Work performed while validating and committing one block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ValidationWork {
    /// Endorsement signatures verified.
    pub sigs_verified: u64,
    /// MVCC read-set version comparisons.
    pub reads_checked: u64,
    /// Write-set entries applied to the world state.
    pub writes_applied: u64,
    /// CRDT merge work units (operations + nodes visited).
    pub merge_units: u64,
    /// Σ over merged values of `units × ops_already_in_document` — the
    /// superlinear merge term (see module docs).
    pub merge_quad: u64,
    /// Transactions committed successfully.
    pub successes: u64,
}

impl ValidationWork {
    /// Accumulates another work record.
    pub fn absorb(&mut self, other: ValidationWork) {
        self.sigs_verified += other.sigs_verified;
        self.reads_checked += other.reads_checked;
        self.writes_applied += other.writes_applied;
        self.merge_units += other.merge_units;
        self.merge_quad += other.merge_quad;
        self.successes += other.successes;
    }
}

/// Converts work counters into simulated compute time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed per-block cost (header hashing, I/O, bookkeeping), µs.
    pub block_overhead_us: f64,
    /// Per endorsement-signature verification, µs.
    pub per_sig_verify_us: f64,
    /// Per MVCC read-version comparison, µs.
    pub per_read_check_us: f64,
    /// Per write-set entry committed to the state database, µs.
    pub per_write_commit_us: f64,
    /// Per CRDT merge work unit (linear term), µs.
    pub per_merge_unit_us: f64,
    /// Per `unit × prior-op` product (superlinear term), µs.
    pub per_merge_quad_us: f64,
    /// Chaincode execution: fixed cost per invocation, µs.
    pub exec_base_us: f64,
    /// Chaincode execution: per `get_state`, µs.
    pub exec_per_read_us: f64,
    /// Chaincode execution: per `put_state`/`put_crdt`, µs.
    pub exec_per_write_us: f64,
    /// Chaincode execution: per KiB moved through the shim, µs.
    pub exec_per_kib_us: f64,
}

impl CostModel {
    /// The calibrated model (see [`crate::latency`] for the calibration
    /// targets).
    pub fn calibrated() -> Self {
        CostModel {
            block_overhead_us: 12_000.0,
            per_sig_verify_us: 440.0,
            per_read_check_us: 200.0,
            per_write_commit_us: 780.0,
            per_merge_unit_us: 55.0,
            per_merge_quad_us: 1.3,
            exec_base_us: 800.0,
            exec_per_read_us: 150.0,
            exec_per_write_us: 100.0,
            exec_per_kib_us: 50.0,
        }
    }

    /// A zero-cost model for logic-only tests.
    pub fn zero() -> Self {
        CostModel {
            block_overhead_us: 0.0,
            per_sig_verify_us: 0.0,
            per_read_check_us: 0.0,
            per_write_commit_us: 0.0,
            per_merge_unit_us: 0.0,
            per_merge_quad_us: 0.0,
            exec_base_us: 0.0,
            exec_per_read_us: 0.0,
            exec_per_write_us: 0.0,
            exec_per_kib_us: 0.0,
        }
    }

    /// Simulated time to validate and commit one block.
    pub fn block_cost(&self, work: &ValidationWork) -> SimTime {
        let us = self.block_overhead_us
            + self.per_sig_verify_us * work.sigs_verified as f64
            + self.per_read_check_us * work.reads_checked as f64
            + self.per_write_commit_us * work.writes_applied as f64
            + self.per_merge_unit_us * work.merge_units as f64
            + self.per_merge_quad_us * work.merge_quad as f64;
        SimTime::from_secs_f64(us / 1e6)
    }

    /// Simulated time for one chaincode execution during endorsement.
    pub fn exec_cost(&self, work: &ExecWork) -> SimTime {
        let kib = (work.bytes_read + work.bytes_written) as f64 / 1024.0;
        let us = self.exec_base_us
            + self.exec_per_read_us * work.reads as f64
            + self.exec_per_write_us * work.writes as f64
            + self.exec_per_kib_us * kib;
        SimTime::from_secs_f64(us / 1e6)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_cost_sums_terms() {
        let model = CostModel {
            block_overhead_us: 1000.0,
            per_sig_verify_us: 10.0,
            per_read_check_us: 5.0,
            per_write_commit_us: 20.0,
            per_merge_unit_us: 2.0,
            per_merge_quad_us: 0.5,
            exec_base_us: 0.0,
            exec_per_read_us: 0.0,
            exec_per_write_us: 0.0,
            exec_per_kib_us: 0.0,
        };
        let work = ValidationWork {
            sigs_verified: 3,
            reads_checked: 2,
            writes_applied: 1,
            merge_units: 10,
            merge_quad: 4,
            successes: 1,
        };
        // 1000 + 30 + 10 + 20 + 20 + 2 = 1082 µs
        assert_eq!(model.block_cost(&work), SimTime::from_micros(1082));
    }

    #[test]
    fn exec_cost_scales_with_shim_traffic() {
        let model = CostModel::calibrated();
        let light = ExecWork {
            reads: 1,
            writes: 1,
            bytes_read: 100,
            bytes_written: 100,
        };
        let heavy = ExecWork {
            reads: 5,
            writes: 5,
            bytes_read: 10_000,
            bytes_written: 10_000,
        };
        assert!(model.exec_cost(&heavy) > model.exec_cost(&light));
        assert!(model.exec_cost(&light) >= SimTime::from_micros(800));
    }

    #[test]
    fn zero_model_charges_nothing() {
        let model = CostModel::zero();
        let work = ValidationWork {
            sigs_verified: 100,
            reads_checked: 100,
            writes_applied: 100,
            merge_units: 100,
            merge_quad: 100,
            successes: 100,
        };
        assert_eq!(model.block_cost(&work), SimTime::ZERO);
    }

    #[test]
    fn validation_work_absorb() {
        let mut a = ValidationWork {
            sigs_verified: 1,
            reads_checked: 2,
            writes_applied: 3,
            merge_units: 4,
            merge_quad: 5,
            successes: 6,
        };
        a.absorb(a);
        assert_eq!(a.sigs_verified, 2);
        assert_eq!(a.merge_quad, 10);
        assert_eq!(a.successes, 12);
    }

    #[test]
    fn merge_quad_term_dominates_large_blocks() {
        // The calibration must make large-block merging markedly more
        // expensive per transaction than small-block merging.
        let model = CostModel::calibrated();
        let per_tx = |block_size: u64| {
            // ~9 units and ~4 ops per 2-key IoT JSON (see jsoncrdt).
            let units = 9 * block_size;
            let quad: u64 = (0..block_size).map(|i| 9 * (i * 4)).sum();
            let work = ValidationWork {
                sigs_verified: 3 * block_size,
                writes_applied: block_size,
                merge_units: units,
                merge_quad: quad,
                ..Default::default()
            };
            model.block_cost(&work).as_secs_f64() / block_size as f64
        };
        let small = per_tx(25);
        let large = per_tx(1000);
        assert!(large > small * 3.0, "small={small} large={large}");
    }
}
