//! The ordering service.
//!
//! The paper's deployment uses Kafka/ZooKeeper purely for total ordering
//! (§7.2, one orderer node); consensus internals are out of evaluation
//! scope. This orderer therefore models the part that matters to the
//! experiments: a single total order over incoming transactions and
//! Fabric's three block-cutting criteria (§3) — maximum transaction
//! count, maximum batch bytes, and a batch timeout measured from the
//! first transaction of the pending batch.

use fabriccrdt_crypto::Digest;
use fabriccrdt_ledger::block::Block;
use fabriccrdt_ledger::transaction::Transaction;
use fabriccrdt_sim::time::SimTime;

use crate::config::{BlockCutConfig, OrderingPolicy};
use crate::conflict::{BlockFeedback, ConflictTracker};
use crate::metrics::ConflictPolicyMetrics;

/// A timeout the caller must arm: fires at `at` for batch `batch_id`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeoutRequest {
    /// Absolute simulated time at which the timeout fires.
    pub at: SimTime,
    /// Identifies the batch; stale timeouts are ignored.
    pub batch_id: u64,
}

/// The ordering service.
///
/// Drive it with [`Orderer::receive`] per transaction and
/// [`Orderer::timeout_fired`] when an armed timeout elapses; both may
/// emit a cut block.
///
/// # Examples
///
/// ```no_run
/// use fabriccrdt_fabric::{config::BlockCutConfig, Orderer};
/// use fabriccrdt_sim::SimTime;
/// # let some_transaction: fabriccrdt_ledger::Transaction = unimplemented!();
///
/// let mut orderer = Orderer::new(BlockCutConfig::with_max_tx(2));
/// let (block, timeout) = orderer.receive(some_transaction, SimTime::ZERO);
/// assert!(block.is_none());        // batch not full yet
/// assert!(timeout.is_some());      // first tx arms the batch timeout
/// ```
#[derive(Debug)]
pub struct Orderer {
    config: BlockCutConfig,
    pending: Vec<Transaction>,
    pending_bytes: usize,
    batch_id: u64,
    next_block_number: u64,
    previous_hash: Digest,
    blocks_cut: u64,
    /// What happens at block cut: FIFO, unconditional Fabric++-style
    /// reordering (see [`crate::reorder`]), or conflict-density-gated
    /// adaptive reordering.
    policy: OrderingPolicy,
    /// Decayed per-key conflict heat, fed back from finalize results
    /// via [`Orderer::observe_finalized`]. Only consulted (and only
    /// updated) under [`OrderingPolicy::Adaptive`].
    tracker: ConflictTracker,
    /// Policy decision counters since construction.
    stats: ConflictPolicyMetrics,
    /// Transactions early-aborted by the policy since the last drain.
    early_aborted: Vec<Transaction>,
}

impl Orderer {
    /// Creates an orderer with the given cutting rules.
    pub fn new(config: BlockCutConfig) -> Self {
        Orderer::with_policy(config, OrderingPolicy::Fifo)
    }

    /// Creates an orderer that reorders each batch by its conflict
    /// dependency graph and early-aborts unsalvageable cycles — the
    /// Fabric++ baseline (paper §8, Sharma et al.).
    pub fn with_reordering(config: BlockCutConfig) -> Self {
        Orderer::with_policy(config, OrderingPolicy::Reorder)
    }

    /// Creates an orderer with an explicit [`OrderingPolicy`].
    pub fn with_policy(config: BlockCutConfig, policy: OrderingPolicy) -> Self {
        assert!(config.max_tx_count > 0, "block size must be positive");
        let tracker = match policy {
            OrderingPolicy::Adaptive(cfg) => ConflictTracker::new(cfg.decay),
            _ => ConflictTracker::new(crate::config::AdaptiveConfig::calibrated().decay),
        };
        // Block 0 is the genesis block every peer starts from; ordered
        // transaction blocks begin at 1 and chain onto it.
        let genesis = Block::genesis();
        Orderer {
            config,
            pending: Vec::new(),
            pending_bytes: 0,
            batch_id: 0,
            next_block_number: 1,
            previous_hash: genesis.hash(),
            blocks_cut: 0,
            policy,
            tracker,
            stats: ConflictPolicyMetrics::default(),
            early_aborted: Vec::new(),
        }
    }

    /// Creates an orderer that resumes cutting on top of an existing
    /// chain position: the next cut block gets `next_block_number` and
    /// chains onto `previous_hash`. A freshly elected Raft leader uses
    /// this to continue numbering and hash-chaining from the tail of
    /// its replicated log.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_tx_count` is zero or `next_block_number`
    /// is zero (block 0 is the genesis block).
    pub fn resuming(
        config: BlockCutConfig,
        reorder: bool,
        next_block_number: u64,
        previous_hash: Digest,
    ) -> Self {
        Orderer::resuming_with_policy(
            config,
            OrderingPolicy::from_legacy(reorder),
            next_block_number,
            previous_hash,
        )
    }

    /// [`Orderer::resuming`] with an explicit [`OrderingPolicy`]. A
    /// freshly elected Raft leader running the adaptive policy pairs
    /// this with [`Orderer::install_tracker`] to inherit the cluster's
    /// replicated conflict heat.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_tx_count` is zero or `next_block_number`
    /// is zero (block 0 is the genesis block).
    pub fn resuming_with_policy(
        config: BlockCutConfig,
        policy: OrderingPolicy,
        next_block_number: u64,
        previous_hash: Digest,
    ) -> Self {
        assert!(next_block_number > 0, "block 0 is the genesis block");
        let mut orderer = Orderer::with_policy(config, policy);
        orderer.next_block_number = next_block_number;
        orderer.previous_hash = previous_hash;
        orderer
    }

    /// The orderer's cut policy.
    pub fn policy(&self) -> OrderingPolicy {
        self.policy
    }

    /// Feeds a committed block's validation outcome back into the
    /// conflict tracker. No-op unless the policy is
    /// [`OrderingPolicy::Adaptive`] — FIFO and unconditional reordering
    /// never consult the tracker, and skipping the update keeps them
    /// byte-identical to their pre-tracker behaviour.
    pub fn observe_finalized(&mut self, feedback: &BlockFeedback) {
        if self.policy.is_adaptive() {
            self.tracker.observe(feedback);
        }
    }

    /// Read access to the conflict tracker (adaptive policy state).
    pub fn tracker(&self) -> &ConflictTracker {
        &self.tracker
    }

    /// Replaces the conflict tracker wholesale. A new Raft leader
    /// installs the cluster-maintained tracker so adaptive decisions
    /// survive failover instead of restarting cold.
    pub fn install_tracker(&mut self, tracker: ConflictTracker) {
        self.tracker = tracker;
    }

    /// Policy decision counters accumulated since construction.
    pub fn policy_stats(&self) -> ConflictPolicyMetrics {
        let mut stats = self.stats;
        stats.tracked_keys = self.tracker.tracked_keys() as u64;
        stats
    }

    /// Drains the policy decision counters (the Raft cluster harvests
    /// them from deposed leaders into a cluster-wide accumulator).
    pub fn take_policy_stats(&mut self) -> ConflictPolicyMetrics {
        let mut stats = std::mem::take(&mut self.stats);
        stats.tracked_keys = self.tracker.tracked_keys() as u64;
        stats
    }

    /// Drains the transactions early-aborted by the cut policy since
    /// the last call (always empty under [`OrderingPolicy::Fifo`]).
    pub fn take_early_aborted(&mut self) -> Vec<Transaction> {
        std::mem::take(&mut self.early_aborted)
    }

    /// Number of transactions waiting in the current batch.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Total blocks cut so far.
    pub fn blocks_cut(&self) -> u64 {
        self.blocks_cut
    }

    /// Enqueues a transaction at time `now`.
    ///
    /// Returns a block if a cutting rule fired, plus a timeout request to
    /// arm when this transaction *started a new batch*.
    pub fn receive(
        &mut self,
        tx: Transaction,
        now: SimTime,
    ) -> (Option<Block>, Option<TimeoutRequest>) {
        let started_batch = self.pending.is_empty();
        self.pending_bytes += tx.to_bytes().len();
        self.pending.push(tx);

        let timeout = started_batch.then(|| TimeoutRequest {
            at: now + self.config.timeout,
            batch_id: self.batch_id,
        });

        let cut = self.pending.len() >= self.config.max_tx_count
            || self.pending_bytes >= self.config.max_bytes;
        let block = cut.then(|| self.cut());
        (block, timeout)
    }

    /// Reacts to an armed timeout. Returns a block when the timeout is
    /// still current and transactions are pending; stale timeouts (the
    /// batch was already cut) return `None`.
    pub fn timeout_fired(&mut self, timeout: TimeoutRequest) -> Option<Block> {
        if timeout.batch_id != self.batch_id || self.pending.is_empty() {
            return None;
        }
        Some(self.cut())
    }

    /// Cuts the pending batch into a block.
    fn cut(&mut self) -> Block {
        let mut transactions = std::mem::take(&mut self.pending);
        match self.policy {
            OrderingPolicy::Fifo => {}
            OrderingPolicy::Reorder => {
                let outcome = crate::reorder::reorder_batch(transactions);
                transactions = outcome.ordered;
                self.stats.batches_reordered += 1;
                self.stats.cycle_aborts += outcome.aborted.len() as u64;
                self.early_aborted.extend(outcome.aborted);
            }
            OrderingPolicy::Adaptive(cfg) => {
                if let Some(threshold) = cfg.predict_abort_threshold {
                    let doomed = self.tracker.predicted_doomed(&transactions, threshold);
                    if !doomed.is_empty() {
                        self.stats.predicted_aborts += doomed.len() as u64;
                        let mut next = doomed.iter().copied().peekable();
                        let mut kept = Vec::with_capacity(transactions.len() - doomed.len());
                        let mut aborted = Vec::with_capacity(doomed.len());
                        for (i, tx) in transactions.into_iter().enumerate() {
                            if next.peek() == Some(&i) {
                                next.next();
                                aborted.push(tx);
                            } else {
                                kept.push(tx);
                            }
                        }
                        transactions = kept;
                        self.tracker.observe_aborts(&aborted);
                        self.early_aborted.extend(aborted);
                    }
                }
                // Until the first finalize feedback arrives the tracker
                // cannot distinguish cold traffic from hot, so the
                // bootstrap batches pay the reordering cost rather than
                // risk shipping a conflict clique FIFO; the first
                // feedback round either proves the traffic cold (the
                // gate opens and batches cut FIFO) or confirms the heat.
                let bootstrap = self.tracker.blocks_observed() == 0;
                let density = self
                    .tracker
                    .batch_conflict_density(&transactions, cfg.hot_key_threshold);
                if bootstrap || density >= cfg.density_threshold {
                    let outcome = crate::reorder::reorder_batch(transactions);
                    transactions = outcome.ordered;
                    self.stats.batches_reordered += 1;
                    self.stats.cycle_aborts += outcome.aborted.len() as u64;
                    // Reordering converts would-be MVCC conflicts into
                    // early aborts that never reach finalize feedback;
                    // record them here so the keys stay hot and the
                    // density gate doesn't oscillate open and shut.
                    self.tracker.observe_aborts(&outcome.aborted);
                    self.early_aborted.extend(outcome.aborted);
                } else {
                    self.stats.batches_fifo += 1;
                }
            }
        }
        self.pending_bytes = 0;
        self.batch_id += 1;
        let block = Block::assemble(self.next_block_number, self.previous_hash, transactions);
        self.previous_hash = block.hash();
        self.next_block_number += 1;
        self.blocks_cut += 1;
        block
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabriccrdt_crypto::Identity;
    use fabriccrdt_ledger::rwset::ReadWriteSet;
    use fabriccrdt_ledger::transaction::TxId;

    fn tx(n: u64) -> Transaction {
        let client = Identity::new("client", "org1");
        let mut rwset = ReadWriteSet::new();
        rwset.writes.put(format!("k{n}"), vec![0u8; 16]);
        Transaction {
            id: TxId::derive(&client, n, "cc"),
            client,
            chaincode: "cc".into(),
            rwset,
            endorsements: Vec::new(),
        }
    }

    fn cfg(max_tx: usize) -> BlockCutConfig {
        BlockCutConfig::with_max_tx(max_tx)
    }

    #[test]
    fn cuts_at_max_tx_count() {
        let mut o = Orderer::new(cfg(3));
        assert!(o.receive(tx(1), SimTime::ZERO).0.is_none());
        assert!(o.receive(tx(2), SimTime::ZERO).0.is_none());
        let (block, _) = o.receive(tx(3), SimTime::ZERO);
        let block = block.unwrap();
        assert_eq!(block.len(), 3);
        assert_eq!(block.header.number, 1); // block 0 is genesis
        assert_eq!(o.pending_len(), 0);
        assert_eq!(o.blocks_cut(), 1);
    }

    #[test]
    fn first_tx_arms_timeout() {
        let mut o = Orderer::new(cfg(10));
        let (_, timeout) = o.receive(tx(1), SimTime::from_millis(100));
        let timeout = timeout.unwrap();
        assert_eq!(
            timeout.at,
            SimTime::from_millis(100) + SimTime::from_secs(2)
        );
        assert_eq!(timeout.batch_id, 0);
        // Second tx of the same batch does not arm another timeout.
        let (_, none) = o.receive(tx(2), SimTime::from_millis(200));
        assert!(none.is_none());
    }

    #[test]
    fn timeout_cuts_partial_batch() {
        let mut o = Orderer::new(cfg(10));
        let (_, timeout) = o.receive(tx(1), SimTime::ZERO);
        assert!(o.receive(tx(2), SimTime::from_millis(1)).0.is_none());
        let block = o.timeout_fired(timeout.unwrap()).unwrap();
        assert_eq!(block.len(), 2);
    }

    #[test]
    fn stale_timeout_ignored() {
        let mut o = Orderer::new(cfg(2));
        let (_, timeout) = o.receive(tx(1), SimTime::ZERO);
        let (block, _) = o.receive(tx(2), SimTime::ZERO); // cut by count
        assert!(block.is_some());
        assert!(o.timeout_fired(timeout.unwrap()).is_none());
    }

    #[test]
    fn timeout_with_empty_batch_ignored() {
        let mut o = Orderer::new(cfg(2));
        let (_, timeout) = o.receive(tx(1), SimTime::ZERO);
        let _ = o.receive(tx(2), SimTime::ZERO);
        // New batch never started; old timeout is stale AND empty.
        assert!(o.timeout_fired(timeout.unwrap()).is_none());
    }

    #[test]
    fn blocks_chain_by_hash() {
        let mut o = Orderer::new(cfg(1));
        let (b1, _) = o.receive(tx(1), SimTime::ZERO);
        let (b2, _) = o.receive(tx(2), SimTime::ZERO);
        let (b1, b2) = (b1.unwrap(), b2.unwrap());
        assert_eq!(b1.header.number, 1);
        assert_eq!(b2.header.number, 2);
        assert_eq!(b1.header.previous_hash, Block::genesis().hash());
        assert_eq!(b2.header.previous_hash, b1.hash());
        // And they append cleanly to a chain started at genesis.
        let mut chain = fabriccrdt_ledger::chain::Blockchain::new();
        chain.append(Block::genesis()).unwrap();
        chain.append(b1).unwrap();
        chain.append(b2).unwrap();
        chain.verify_integrity().unwrap();
    }

    #[test]
    fn byte_limit_cuts_block() {
        let mut config = cfg(1000);
        config.max_bytes = 200; // tiny: a couple of transactions
        let mut o = Orderer::new(config);
        let mut cut_at = None;
        for i in 0..10 {
            if let (Some(block), _) = o.receive(tx(i), SimTime::ZERO) {
                cut_at = Some((i, block.len()));
                break;
            }
        }
        let (i, len) = cut_at.expect("byte limit should cut");
        assert!(len >= 1 && len as u64 == i + 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_block_size_panics() {
        Orderer::new(cfg(0));
    }

    // Timeout-bookkeeping regression suite: a `timeout_fired` arriving
    // after a size-triggered cut (a stale `TimeoutRequest` the caller
    // still has armed) must never cut an empty or duplicate block, no
    // matter what arrived in between.

    #[test]
    fn stale_timeout_mid_next_batch_cuts_nothing() {
        let mut o = Orderer::new(cfg(2));
        let (_, stale) = o.receive(tx(1), SimTime::ZERO);
        let stale = stale.unwrap();
        let (cut, _) = o.receive(tx(2), SimTime::from_millis(1)); // size cut
        assert!(cut.is_some());
        // A new batch is already open when the stale timeout fires: it
        // must not cut that batch early (that would duplicate the cut
        // the *new* batch's own timeout performs later).
        let (_, fresh) = o.receive(tx(3), SimTime::from_millis(2));
        assert!(o.timeout_fired(stale).is_none());
        assert_eq!(o.pending_len(), 1, "stale timeout must not touch the batch");
        // The new batch's own timeout still cuts exactly once.
        let block = o.timeout_fired(fresh.unwrap()).unwrap();
        assert_eq!(block.len(), 1);
        assert_eq!(block.header.number, 2);
        assert_eq!(o.blocks_cut(), 2);
    }

    #[test]
    fn timeout_armed_by_the_cutting_receive_is_stale() {
        // With max_tx = 1 a single receive both arms a timeout (the tx
        // started a batch) and cuts the batch; the armed request is
        // born stale and must never fire a second, empty block.
        let mut o = Orderer::new(cfg(1));
        let (block, timeout) = o.receive(tx(1), SimTime::ZERO);
        assert!(block.is_some());
        let timeout = timeout.unwrap();
        assert!(o.timeout_fired(timeout).is_none());
        assert_eq!(o.blocks_cut(), 1);
        // Even once a later batch is pending, the old request stays stale.
        let (block2, _) = o.receive(tx(2), SimTime::from_millis(5));
        assert!(block2.is_some());
        assert!(o.timeout_fired(timeout).is_none());
        assert_eq!(o.blocks_cut(), 2);
    }

    #[test]
    fn double_fired_timeout_cuts_once() {
        let mut o = Orderer::new(cfg(10));
        let (_, timeout) = o.receive(tx(1), SimTime::ZERO);
        let timeout = timeout.unwrap();
        assert!(o.timeout_fired(timeout).is_some());
        // The same request delivered again (duplicated event) is stale.
        assert!(o.timeout_fired(timeout).is_none());
        assert_eq!(o.blocks_cut(), 1);
    }

    #[test]
    fn resuming_continues_numbering_and_chaining() {
        let mut first = Orderer::new(cfg(1));
        let (b1, _) = first.receive(tx(1), SimTime::ZERO);
        let b1 = b1.unwrap();
        // A successor (new Raft leader) resumes from the log tail.
        let mut second = Orderer::resuming(cfg(1), false, 2, b1.hash());
        let (b2, _) = second.receive(tx(2), SimTime::from_millis(1));
        let b2 = b2.unwrap();
        assert_eq!(b2.header.number, 2);
        assert_eq!(b2.header.previous_hash, b1.hash());
        let mut chain = fabriccrdt_ledger::chain::Blockchain::new();
        chain.append(Block::genesis()).unwrap();
        chain.append(b1).unwrap();
        chain.append(b2).unwrap();
        chain.verify_integrity().unwrap();
    }

    #[test]
    #[should_panic(expected = "genesis")]
    fn resuming_at_genesis_number_panics() {
        Orderer::resuming(cfg(1), false, 0, Block::genesis().hash());
    }

    fn rmw(n: u64, key: &str) -> Transaction {
        use fabriccrdt_ledger::version::Height;
        let client = Identity::new("client", "org1");
        let mut rwset = ReadWriteSet::new();
        rwset.reads.record(key, Some(Height::new(1, 0)));
        rwset.writes.put(key.to_string(), vec![0u8; 16]);
        Transaction {
            id: TxId::derive(&client, n, "cc"),
            client,
            chaincode: "cc".into(),
            rwset,
            endorsements: Vec::new(),
        }
    }

    fn adaptive() -> crate::config::AdaptiveConfig {
        crate::config::AdaptiveConfig::calibrated()
    }

    #[test]
    fn adaptive_bootstraps_reordering_then_cold_feedback_cuts_fifo() {
        let mut o = Orderer::with_policy(cfg(3), OrderingPolicy::Adaptive(adaptive()));
        // No feedback yet: the bootstrap batch pays the reordering cost
        // rather than risk shipping a conflict clique FIFO — the RMW
        // clique on one key collapses to a single survivor.
        let _ = o.receive(rmw(1, "hot"), SimTime::ZERO);
        let _ = o.receive(rmw(2, "hot"), SimTime::ZERO);
        let (block, _) = o.receive(rmw(3, "hot"), SimTime::ZERO);
        assert_eq!(block.unwrap().len(), 1);
        assert_eq!(o.take_early_aborted().len(), 2);
        assert_eq!(o.policy_stats().batches_reordered, 1);
        // Conflict-free finalize feedback proves the traffic cold; the
        // density gate opens and subsequent batches ship FIFO intact
        // even though the bootstrap aborts left some residual heat.
        for _ in 0..4 {
            o.observe_finalized(&BlockFeedback {
                writes: vec!["elsewhere".into()],
                conflicts: vec![],
            });
        }
        let _ = o.receive(rmw(4, "k4"), SimTime::ZERO);
        let _ = o.receive(rmw(5, "k5"), SimTime::ZERO);
        let (block, _) = o.receive(rmw(6, "k6"), SimTime::ZERO);
        assert_eq!(block.unwrap().len(), 3);
        assert!(o.take_early_aborted().is_empty());
        let stats = o.policy_stats();
        assert_eq!(stats.batches_fifo, 1);
        assert_eq!(stats.batches_reordered, 1);
    }

    #[test]
    fn adaptive_reorders_once_conflicts_accumulate() {
        let cfg_a = adaptive();
        let mut o = Orderer::with_policy(cfg(3), OrderingPolicy::Adaptive(cfg_a));
        // Finalize feedback reports repeated MVCC conflicts on "hot".
        for _ in 0..4 {
            o.observe_finalized(&BlockFeedback {
                writes: vec![],
                conflicts: vec!["hot".into(), "hot".into()],
            });
        }
        assert!(o.tracker().heat("hot").conflicts >= cfg_a.hot_key_threshold);
        // The next hot batch trips the density gate: an RMW clique on a
        // single key is one big SCC, so all but one transaction aborts.
        let _ = o.receive(rmw(1, "hot"), SimTime::ZERO);
        let _ = o.receive(rmw(2, "hot"), SimTime::ZERO);
        let (block, _) = o.receive(rmw(3, "hot"), SimTime::ZERO);
        assert_eq!(block.unwrap().len(), 1);
        assert_eq!(o.take_early_aborted().len(), 2);
        let stats = o.policy_stats();
        assert_eq!(stats.batches_reordered, 1);
        assert_eq!(stats.cycle_aborts, 2);
    }

    #[test]
    fn adaptive_predictive_abort_drops_doomed_rmws() {
        let mut cfg_a = adaptive();
        cfg_a.predict_abort_threshold = Some(1.0);
        let mut o = Orderer::with_policy(cfg(3), OrderingPolicy::Adaptive(cfg_a));
        for _ in 0..6 {
            o.observe_finalized(&BlockFeedback {
                writes: vec![],
                conflicts: vec!["hot".into(), "hot".into()],
            });
        }
        let _ = o.receive(rmw(1, "hot"), SimTime::ZERO);
        let _ = o.receive(rmw(2, "hot"), SimTime::ZERO);
        let (block, _) = o.receive(rmw(3, "hot"), SimTime::ZERO);
        // The predictive pass keeps the first RMW and drops the rest
        // before the (now trivially acyclic) batch even reaches the
        // density gate.
        assert_eq!(block.unwrap().len(), 1);
        assert_eq!(o.take_early_aborted().len(), 2);
        assert_eq!(o.policy_stats().predicted_aborts, 2);
    }

    #[test]
    fn fifo_and_reorder_policies_never_touch_the_tracker() {
        for policy in [OrderingPolicy::Fifo, OrderingPolicy::Reorder] {
            let mut o = Orderer::with_policy(cfg(10), policy);
            o.observe_finalized(&BlockFeedback {
                writes: vec!["a".into()],
                conflicts: vec!["b".into()],
            });
            assert_eq!(o.tracker().tracked_keys(), 0);
        }
    }

    #[test]
    fn install_tracker_carries_heat_across_orderers() {
        let cfg_a = adaptive();
        let mut first = Orderer::with_policy(cfg(3), OrderingPolicy::Adaptive(cfg_a));
        for _ in 0..4 {
            first.observe_finalized(&BlockFeedback {
                writes: vec![],
                conflicts: vec!["hot".into(), "hot".into()],
            });
        }
        // Failover: the successor inherits the tracker and keeps the
        // density gate open without relearning.
        let mut second = Orderer::resuming_with_policy(
            cfg(3),
            OrderingPolicy::Adaptive(cfg_a),
            5,
            Block::genesis().hash(),
        );
        second.install_tracker(first.tracker().clone());
        let _ = second.receive(rmw(1, "hot"), SimTime::ZERO);
        let _ = second.receive(rmw(2, "hot"), SimTime::ZERO);
        let (block, _) = second.receive(rmw(3, "hot"), SimTime::ZERO);
        let block = block.unwrap();
        assert_eq!(block.header.number, 5);
        assert_eq!(block.len(), 1);
        assert_eq!(second.policy_stats().batches_reordered, 1);
    }
}
