#!/usr/bin/env bash
# Tier-1 gate, fully offline: the workspace has no external
# dependencies, so every step runs with networking disabled.
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

# Smoke-run the experiment binaries with tiny configs: they assert
# their own invariants (convergence, byte-identical ledgers, failover
# recovery), so a panic here fails the gate.
echo "==> experiment smoke runs"
cargo run --release -q -p fabriccrdt-bench --bin partition_heal
cargo run --release -q -p fabriccrdt-bench --bin orderer_failover -- --txs 300
cargo run --release -q -p fabriccrdt-bench --bin ablation -- --txs 200

echo "==> OK"
