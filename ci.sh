#!/usr/bin/env bash
# Tier-1 gate, fully offline: the workspace has no external
# dependencies, so every step runs with networking disabled.
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

# Smoke-run the experiment binaries with tiny configs: they assert
# their own invariants (convergence, byte-identical ledgers, failover
# recovery), so a panic here fails the gate.
echo "==> experiment smoke runs"
cargo run --release -q -p fabriccrdt-bench --bin partition_heal
cargo run --release -q -p fabriccrdt-bench --bin orderer_failover -- --txs 300
cargo run --release -q -p fabriccrdt-bench --bin ablation -- --txs 200

# The commit-path wall-clock bench asserts parallel == sequential and
# pipelined == sequential ledgers internally, checks that the pipelined
# driver overlapped every chained block, and re-parses its own JSON
# artifact; the gate additionally checks the artifact landed and
# carries the expected fields — including the pipelined cells and their
# measured stage-overlap windows (well-formedness beyond "the bin did
# not crash").
echo "==> commit_path smoke run + artifact check"
rm -f BENCH_commit_path.json
cargo run --release -q -p fabriccrdt-bench --bin commit_path -- --txs 200
test -s BENCH_commit_path.json
grep -q '"bench": "commit_path"' BENCH_commit_path.json
grep -q '"sequential_baseline_tps"' BENCH_commit_path.json
grep -q '"speedup_at_4_workers"' BENCH_commit_path.json
grep -q '"finalize_speedup_at_4_workers"' BENCH_commit_path.json
grep -q '"pipelined_speedup_at_4_workers"' BENCH_commit_path.json
grep -q '"blocks_overlapped"' BENCH_commit_path.json
grep -q '"speculative_reads_checked"' BENCH_commit_path.json
grep -q '"pre_validate_secs"' BENCH_commit_path.json
grep -q '"finalize_secs"' BENCH_commit_path.json
grep -q '"overlap_secs"' BENCH_commit_path.json
grep -q '"pipeline": "pipelined(4)"' BENCH_commit_path.json

# The catch-up storage bench asserts snapshot transfers beat full
# replay at the 100-block chain and that the append-only-file backend
# is byte-identical to the in-memory one; the gate checks the artifact.
echo "==> catchup_storage smoke run + artifact check"
rm -f BENCH_catchup_storage.json
cargo run --release -q -p fabriccrdt-bench --bin catchup_storage -- --txs 300
test -s BENCH_catchup_storage.json
grep -q '"bench": "catchup_storage"' BENCH_catchup_storage.json
grep -q '"replay_bytes"' BENCH_catchup_storage.json
grep -q '"snapshot_bytes"' BENCH_catchup_storage.json
grep -q '"snapshot_saving_at_100_blocks"' BENCH_catchup_storage.json
grep -q '"used_snapshot": true' BENCH_catchup_storage.json

# The multi-channel bench asserts 1-channel bit-identity to the seed
# gossip pipeline, per-channel replica convergence, aggregate-TPS
# scaling and transfer exactly-once internally; the gate checks the
# artifact landed with the aggregate-TPS and channel-count fields.
echo "==> multi_channel smoke run + artifact check"
rm -f BENCH_multi_channel.json
cargo run --release -q -p fabriccrdt-bench --bin multi_channel -- --txs 2000
test -s BENCH_multi_channel.json
grep -q '"bench": "multi_channel"' BENCH_multi_channel.json
grep -q '"aggregate_tps"' BENCH_multi_channel.json
grep -q '"aggregate_tps_speedup_4ch"' BENCH_multi_channel.json
grep -q '"channels": 1' BENCH_multi_channel.json
grep -q '"channels": 4' BENCH_multi_channel.json
grep -q '"clients_per_channel"' BENCH_multi_channel.json
grep -q '"single_channel_identity": true' BENCH_multi_channel.json
grep -q '"transfers_committed"' BENCH_multi_channel.json

# The conflict-strategy bench sweeps CRDT merge-commit vs
# abort-and-retry vs reorder+early-abort vs adaptive ordering across
# Zipf skews and retry budgets; it self-asserts the acceptance shape
# (FabricCRDT >= all at s=1.2, adaptive >= reorder at s=0.0) and
# re-parses its own JSON. The gate checks the goodput/retry/wasted-work
# fields landed in the artifact.
echo "==> zipf_conflict smoke run + artifact check"
rm -f BENCH_zipf_conflict.json
cargo run --release -q -p fabriccrdt-bench --bin zipf -- --txs 600
test -s BENCH_zipf_conflict.json
grep -q '"bench": "zipf_conflict"' BENCH_zipf_conflict.json
grep -q '"goodput_tps"' BENCH_zipf_conflict.json
grep -q '"retries"' BENCH_zipf_conflict.json
grep -q '"wasted_validation_work"' BENCH_zipf_conflict.json
grep -q '"strategy": "fabriccrdt"' BENCH_zipf_conflict.json
grep -q '"strategy": "fabric-retry"' BENCH_zipf_conflict.json
grep -q '"strategy": "fabric-reorder"' BENCH_zipf_conflict.json
grep -q '"strategy": "fabric-adaptive"' BENCH_zipf_conflict.json
grep -q '"skew": 1.2' BENCH_zipf_conflict.json

# The adversarial bench runs the byzantine attack schedule, 100 hostile
# fuzz streams, and the offline merge-storm probes; it asserts honest
# convergence, equivocation detection, and incremental < full-replay
# internally. The gate checks the detection and merge-storm fields
# landed in the artifact.
echo "==> adversarial smoke run + artifact check"
rm -f BENCH_adversarial.json
cargo run --release -q -p fabriccrdt-bench --bin adversarial -- --txs 1500
test -s BENCH_adversarial.json
grep -q '"bench": "adversarial"' BENCH_adversarial.json
grep -q '"equivocations_detected"' BENCH_adversarial.json
grep -q '"tampered_rejected"' BENCH_adversarial.json
grep -q '"forged_rejected"' BENCH_adversarial.json
grep -q '"honest_replicas_converged": true' BENCH_adversarial.json
grep -q '"incremental_merge_ops"' BENCH_adversarial.json
grep -q '"full_replay_ops"' BENCH_adversarial.json
grep -q '"merge_storm_catch_up_secs"' BENCH_adversarial.json
grep -q '"offline_rejoin_reconverged": true' BENCH_adversarial.json

echo "==> OK"
