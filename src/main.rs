//! `fabriccrdt-repro` — command-line front end for the reproduction.
//!
//! ```text
//! fabriccrdt-repro experiment [--system fabric|fabriccrdt|fabric++]
//!                             [--block-size N] [--rate TPS] [--txs N]
//!                             [--reads N] [--writes N]
//!                             [--json-keys K --json-depth D]
//!                             [--conflicts PCT] [--seed S]
//!     Run one experiment cell and print its metrics.
//!
//! fabriccrdt-repro compare [--txs N] [--seed S]
//!     Run the paper's base workload on all three systems and print a
//!     Caliper-style report.
//!
//! fabriccrdt-repro export-chain <path> [--txs N] [--seed S]
//!     Run a small FabricCRDT workload and write the resulting
//!     blockchain to <path> in the binary block format.
//!
//! fabriccrdt-repro verify-chain <path>
//!     Decode a chain file, verify hash-chain integrity and print a
//!     summary.
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use fabriccrdt_repro::fabric::chaincode::ChaincodeRegistry;
use fabriccrdt_repro::fabric::config::PipelineConfig;
use fabriccrdt_repro::fabric::simulation::TxRequest;
use fabriccrdt_repro::fabriccrdt::fabriccrdt_simulation;
use fabriccrdt_repro::ledger::codec;
use fabriccrdt_repro::sim::time::SimTime;
use fabriccrdt_repro::workload::caliper::Benchmark;
use fabriccrdt_repro::workload::experiment::{ExperimentConfig, SystemKind};
use fabriccrdt_repro::workload::generator::JsonShape;
use fabriccrdt_repro::workload::iot::IotChaincode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("experiment") => cmd_experiment(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("export-chain") => cmd_export_chain(&args[1..]),
        Some("verify-chain") => cmd_verify_chain(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{}", USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}; see --help")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
fabriccrdt-repro — FabricCRDT (Middleware 2019) reproduction CLI

commands:
  experiment    run one experiment cell (see --help text in source)
  compare       run the base workload on Fabric, Fabric++ and FabricCRDT
  export-chain  run a workload and write the blockchain to a file
  verify-chain  decode a chain file and verify its integrity
";

/// Tiny flag parser: `--key value` pairs plus positional arguments.
struct Flags {
    positional: Vec<String>,
    pairs: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut positional = Vec::new();
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            if let Some(key) = args[i].strip_prefix("--") {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--{key} requires a value"))?;
                pairs.push((key.to_owned(), value.clone()));
                i += 2;
            } else {
                positional.push(args[i].clone());
                i += 1;
            }
        }
        Ok(Flags { positional, pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects a number, got {v:?}")),
        }
    }
}

fn parse_system(name: &str) -> Result<SystemKind, String> {
    match name.to_ascii_lowercase().as_str() {
        "fabric" => Ok(SystemKind::Fabric),
        "fabriccrdt" | "crdt" => Ok(SystemKind::FabricCrdt),
        "fabric++" | "reordering" => Ok(SystemKind::FabricReordering),
        other => Err(format!(
            "unknown system {other:?}; expected fabric, fabriccrdt or fabric++"
        )),
    }
}

fn cmd_experiment(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let system = parse_system(flags.get("system").unwrap_or("fabriccrdt"))?;
    let config = ExperimentConfig {
        system,
        block_size: flags.num("block-size", system.best_block_size())?,
        rate_tps: flags.num("rate", 300.0)?,
        total_txs: flags.num("txs", 10_000)?,
        read_keys: flags.num("reads", 1)?,
        write_keys: flags.num("writes", 1)?,
        shape: JsonShape::complexity(flags.num("json-keys", 2)?, flags.num("json-depth", 1)?),
        conflict_pct: flags.num("conflicts", 100)?,
        seed: flags.num("seed", 42)?,
    };
    let result = config.run();
    println!("system      : {}", config.system.label());
    println!("block size  : {}", config.block_size);
    println!(
        "rate        : {} tx/s over {} txs",
        config.rate_tps, config.total_txs
    );
    println!("successful  : {}", result.successful);
    println!("failed      : {}", result.failed);
    println!("throughput  : {:.1} tx/s", result.throughput_tps);
    match result.avg_latency_secs {
        Some(secs) => println!("avg latency : {secs:.3} s"),
        None => println!("avg latency : n/a (no successful transactions)"),
    }
    println!("p95 latency : {:.3} s", result.p95_latency_secs);
    println!("blocks      : {}", result.blocks);
    println!("duration    : {:.1} s (simulated)", result.duration_secs);
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let base = ExperimentConfig {
        total_txs: flags.num("txs", 2_000)?,
        seed: flags.num("seed", 42)?,
        ..ExperimentConfig::paper_defaults()
    };
    let report = Benchmark::new("paper base workload (all transactions conflicting)")
        .round("fabric", base.for_system(SystemKind::Fabric))
        .round("fabric++", base.for_system(SystemKind::FabricReordering))
        .round("fabriccrdt", base.for_system(SystemKind::FabricCrdt))
        .run();
    println!("{}", report.render());
    Ok(())
}

fn run_small_crdt_workload(txs: usize, seed: u64) -> fabriccrdt_repro::ledger::Blockchain {
    let mut registry = ChaincodeRegistry::new();
    registry.deploy(Arc::new(IotChaincode::crdt()));
    let mut sim = fabriccrdt_simulation(PipelineConfig::paper(25, seed), registry);
    sim.seed_state("device1", br#"{"readings":[]}"#.to_vec());
    let schedule: Vec<(SimTime, TxRequest)> = (0..txs)
        .map(|i| {
            let json = format!(r#"{{"deviceID":"device1","readings":["r{i}"]}}"#);
            (
                SimTime::from_secs_f64(i as f64 / 300.0),
                TxRequest::new(
                    "iot-crdt",
                    IotChaincode::args(&["device1".into()], &["device1".into()], &json),
                ),
            )
        })
        .collect();
    sim.run(schedule);
    sim.peer().chain().clone()
}

fn cmd_export_chain(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let path = flags
        .positional
        .first()
        .ok_or("export-chain requires a file path")?;
    let txs = flags.num("txs", 500)?;
    let seed = flags.num("seed", 42)?;
    let chain = run_small_crdt_workload(txs, seed);
    let bytes = codec::encode_chain(&chain);
    std::fs::write(path, &bytes).map_err(|e| format!("writing {path}: {e}"))?;
    println!(
        "wrote {} blocks ({} transactions, {} bytes) to {path}",
        chain.height(),
        chain.total_transactions(),
        bytes.len()
    );
    Ok(())
}

fn cmd_verify_chain(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let path = flags
        .positional
        .first()
        .ok_or("verify-chain requires a file path")?;
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    let chain = codec::decode_chain(&bytes).map_err(|e| format!("decoding: {e}"))?;
    chain
        .verify_integrity()
        .map_err(|e| format!("integrity: {e}"))?;
    let successful: usize = chain.iter().map(|b| b.successful_count()).sum();
    println!(
        "chain OK: {} blocks, {} transactions ({} successful), tip hash {}",
        chain.height(),
        chain.total_transactions(),
        successful,
        fabriccrdt_repro::crypto::hex::encode(&chain.tip_hash())[..16].to_owned() + "…",
    );
    Ok(())
}
