//! Umbrella crate for the FabricCRDT reproduction workspace.
//!
//! Re-exports every member crate under one roof so that the repository's
//! `examples/` and `tests/` can exercise the whole system, and so that a
//! downstream user can depend on a single crate.
//!
//! Start with [`fabriccrdt`] (the paper's contribution) and
//! [`fabriccrdt_fabric`] (the Fabric-like substrate). See `README.md` for a
//! guided tour and `DESIGN.md` for the architecture.

#![forbid(unsafe_code)]

pub use fabriccrdt;
pub use fabriccrdt_channel as channel;
pub use fabriccrdt_crypto as crypto;
pub use fabriccrdt_fabric as fabric;
pub use fabriccrdt_gossip as gossip;
pub use fabriccrdt_jsoncrdt as jsoncrdt;
pub use fabriccrdt_ledger as ledger;
pub use fabriccrdt_ordering as ordering;
pub use fabriccrdt_sim as sim;
pub use fabriccrdt_workload as workload;

/// Builds a FabricCRDT network whose block dissemination runs through
/// the simulated gossip layer (leader pull, push gossip, anti-entropy —
/// Fabric §4.4), honoring `config.gossip` and `config.faults`. The
/// vanilla-Fabric twin is
/// [`fabriccrdt_gossip::fabric_gossip_simulation`].
pub fn fabriccrdt_gossip_simulation(
    config: fabric::config::PipelineConfig,
    registry: fabric::chaincode::ChaincodeRegistry,
) -> fabric::simulation::Simulation<fabriccrdt::CrdtValidator> {
    let delivery = Box::new(gossip::GossipDelivery::new(
        &config,
        fabriccrdt::CrdtValidator::new,
    ));
    fabriccrdt::fabriccrdt_simulation_with_delivery(config, registry, delivery)
}

/// Builds a FabricCRDT network whose ordering tier runs on the
/// simulated Raft cluster (leader election, log replication,
/// crash-failover — Fabric's pluggable consensus), honoring
/// `config.ordering` and its fault schedule. The vanilla-Fabric twin
/// is [`fabriccrdt_ordering::fabric_raft_simulation`].
pub fn fabriccrdt_raft_simulation(
    config: fabric::config::PipelineConfig,
    registry: fabric::chaincode::ChaincodeRegistry,
) -> fabric::simulation::Simulation<fabriccrdt::CrdtValidator> {
    let backend = Box::new(ordering::RaftOrderingBackend::new(&config));
    fabriccrdt::fabriccrdt_simulation_with_ordering(config, registry, backend)
}
