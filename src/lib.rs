//! Umbrella crate for the FabricCRDT reproduction workspace.
//!
//! Re-exports every member crate under one roof so that the repository's
//! `examples/` and `tests/` can exercise the whole system, and so that a
//! downstream user can depend on a single crate.
//!
//! Start with [`fabriccrdt`] (the paper's contribution) and
//! [`fabriccrdt_fabric`] (the Fabric-like substrate). See `README.md` for a
//! guided tour and `DESIGN.md` for the architecture.

#![forbid(unsafe_code)]

pub use fabriccrdt;
pub use fabriccrdt_crypto as crypto;
pub use fabriccrdt_fabric as fabric;
pub use fabriccrdt_jsoncrdt as jsoncrdt;
pub use fabriccrdt_ledger as ledger;
pub use fabriccrdt_sim as sim;
pub use fabriccrdt_workload as workload;
